"""Figure-1-style landscape panels assembled from measured series.

Each benchmark produces one :class:`LandscapePanel` per Figure-1 panel:
rows pair a problem with its theoretically expected class, the measured
locality/probe series, and the class fitted by
:func:`repro.landscape.fit.fit_growth`.  The renderer prints the same
information the paper's figure conveys — which classes are inhabited —
and :meth:`LandscapePanel.gap_violations` mechanically checks the
theorems' red region: no measured series may be ω(1) yet o(log* n).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.exceptions import LandscapeError
from repro.landscape.fit import GROWTH_SHAPES, FitResult, fit_growth

logger = logging.getLogger(__name__)

#: Classes lying inside the forbidden gap of Theorems 1.1/1.3/1.4.
GAP_CLASSES = ("Theta(log log* n)",)


@dataclass
class SeriesRow:
    """One problem's measured complexity series."""

    problem: str
    expected: str
    ns: Sequence[int]
    values: Sequence[float]
    #: Restrict candidate shapes for this row (panel-specific classes).
    shapes: Optional[Dict[str, Callable[[float], float]]] = None
    #: Explicit degradation note for partial series (quarantined cells).
    note: str = ""
    fit: FitResult = field(init=False)

    def __post_init__(self) -> None:
        # Validate the series *here*, with row context, so a malformed
        # measurement surfaces as a typed LandscapeError naming the
        # problem rather than an unguarded fit_growth crash mid-panel.
        if not self.ns or not self.values:
            raise LandscapeError(f"series {self.problem!r}: empty measurement series")
        if len(self.ns) != len(self.values):
            raise LandscapeError(
                f"series {self.problem!r}: {len(self.ns)} sample point(s) but "
                f"{len(self.values)} value(s)"
            )
        bad = [
            (n, v)
            for n, v in zip(self.ns, self.values)
            if not math.isfinite(float(v))
        ]
        if bad:
            raise LandscapeError(
                f"series {self.problem!r}: non-finite measurement(s) {bad!r}"
            )
        self.fit = fit_growth(self.ns, list(self.values), shapes=self.shapes)

    @property
    def fitted(self) -> str:
        return self.fit.best

    @property
    def matches_expectation(self) -> bool:
        """The expected class fits as well as any other (tie-aware)."""
        return self.expected in self.fit.tied

    @property
    def in_gap(self) -> bool:
        """Every comparably-fitting class lies in the forbidden band.

        Tie-aware: a series whose tie set contains any class outside the
        gap (e.g. O(1) or Theta(log* n)) is *not* evidence of a gap
        inhabitant — at reachable n, Theta(log* n) and Theta(log log* n)
        are affinely indistinguishable step functions.
        """
        return all(name in GAP_CLASSES for name in self.fit.tied)


@dataclass(frozen=True)
class QuarantinedRow:
    """A series the supervisor could not measure: quarantined, not fitted.

    Carries the supervised campaign's fault classification and captured
    traceback so a partial panel stays *auditable*: the reader sees
    exactly which series is missing and why, and the gap check can never
    mistake the absence of data for evidence about the gap.
    """

    problem: str
    expected: str
    #: Supervisor fault taxonomy: ``error`` / ``timeout`` / ``oom`` /
    #: ``signal`` / ``lost``.
    classification: str
    reason: str = ""
    traceback: str = ""

    def describe(self) -> str:
        detail = f" ({self.reason})" if self.reason else ""
        return f"{self.problem}: {self.classification}{detail}"


@dataclass
class LandscapePanel:
    """A Figure-1 panel: titled collection of series rows.

    A panel assembled from a supervised campaign may be *partial*:
    series whose cells were quarantined appear in :attr:`quarantined`
    (never in :attr:`rows`), and series fitted from a subset of the
    sample grid carry an explicit degradation note.  :meth:`render`
    surfaces both, and :meth:`gap_violations` only ever inspects real
    measured rows — a quarantined series cannot count as gap evidence.
    """

    title: str
    rows: List[SeriesRow] = field(default_factory=list)
    quarantined: List[QuarantinedRow] = field(default_factory=list)

    def add(
        self,
        problem: str,
        expected: str,
        ns: Sequence[int],
        values: Sequence[float],
        shapes: Optional[Dict[str, Callable[[float], float]]] = None,
        note: str = "",
    ) -> SeriesRow:
        row = SeriesRow(problem, expected, ns, values, shapes=shapes, note=note)
        self.rows.append(row)
        return row

    def quarantine(
        self,
        problem: str,
        expected: str,
        classification: str,
        reason: str = "",
        traceback: str = "",
    ) -> QuarantinedRow:
        """Record a series that could not be measured (no fit, no gap
        evidence — an explicit hole in the panel)."""
        row = QuarantinedRow(problem, expected, classification, reason, traceback)
        self.quarantined.append(row)
        return row

    @property
    def complete(self) -> bool:
        """Whether every planned series produced a measured row."""
        return not self.quarantined and all(not row.note for row in self.rows)

    def gap_violations(self, gap_classes: Sequence[str] = GAP_CLASSES) -> List[SeriesRow]:
        """Rows whose fitted class lies in the forbidden ω(1)–o(log* n) gap.

        The general-graphs panel legitimately contains such rows (the
        dense region of [11]); the tree / grid / VOLUME panels must not —
        that is exactly what Theorems 1.1, 1.3 and 1.4 assert.

        Only *measured* rows participate: quarantined series carry no
        fit and are excluded by construction, so a crashed or hung cell
        can never be mistaken for a gap inhabitant (nor for evidence of
        an empty gap — :meth:`render` flags the degradation).
        """
        return [
            row
            for row in self.rows
            if all(name in gap_classes for name in row.fit.tied)
        ]

    def render(self) -> str:
        lines = [f"== {self.title} =="]
        if not self.rows and not self.quarantined:
            return lines[0] + "\n  (empty)"
        if self.rows:
            ns = self.rows[0].ns
            header = f"  {'problem':<32} {'expected':<20} {'fitted':<20} " + " ".join(
                f"n={n}" for n in ns
            )
            lines.append(header)
            for row in self.rows:
                values = " ".join(
                    f"{v:>{len(f'n={n}')}.4g}" for n, v in zip(row.ns, row.values)
                )
                fitted = row.fitted + ("~" if len(row.fit.tied) > 1 else "")
                flag = "" if row.matches_expectation else "  [fit != expected]"
                note = f"  [partial: {row.note}]" if row.note else ""
                lines.append(
                    f"  {row.problem:<32} {row.expected:<20} {fitted:<20} "
                    f"{values}{flag}{note}"
                )
        for row in self.quarantined:
            lines.append(
                f"  {row.problem:<32} {row.expected:<20} QUARANTINED "
                f"[{row.classification}]{f' {row.reason}' if row.reason else ''}"
            )
        violations = self.gap_violations()
        if violations:
            lines.append(
                "  !! series in the forbidden gap: "
                + ", ".join(row.problem for row in violations)
            )
        else:
            lines.append("  gap (omega(1) .. o(log* n)): empty, as the theorem predicts")
        if not self.complete:
            holes = len(self.quarantined) + sum(1 for row in self.rows if row.note)
            lines.append(
                f"  !! degraded panel: {holes} series with quarantined cells — "
                "the gap verdict above covers measured rows only"
            )
        return "\n".join(lines)


# --------------------------------------------------- anytime classification
@dataclass
class VerdictRow:
    """One problem's (possibly partial) constant-time classification."""

    problem: str
    #: ``"O(1)"``, ``"Omega(log* n)"``, or ``"UNKNOWN(>= step k)"``.
    verdict: str
    #: Free-form context: rounds, fixed-point depth, or budget diagnostics.
    detail: str = ""

    @property
    def is_unknown(self) -> bool:
        return self.verdict.startswith("UNKNOWN")


@dataclass
class ClassificationPanel:
    """A landscape panel of Question-1.7 verdicts under a resource budget.

    Unlike :class:`LandscapePanel` (measured complexity series), this
    panel reports the *decision-procedure* side of the landscape: which
    problems the semidecision of Theorem 3.11 settles within the given
    budget, and — crucially — a structured ``UNKNOWN(>= step k)`` row
    (never a hang) for the ones it does not.
    """

    title: str
    rows: List[VerdictRow] = field(default_factory=list)

    def add(self, problem: str, verdict: str, detail: str = "") -> VerdictRow:
        row = VerdictRow(problem, verdict, detail)
        self.rows.append(row)
        return row

    def unknown_rows(self) -> List[VerdictRow]:
        """The rows the budgeted walk could not settle."""
        return [row for row in self.rows if row.is_unknown]

    def render(self) -> str:
        lines = [f"== {self.title} =="]
        if not self.rows:
            return lines[0] + "\n  (empty)"
        lines.append(f"  {'problem':<32} {'verdict':<24} detail")
        for row in self.rows:
            lines.append(f"  {row.problem:<32} {row.verdict:<24} {row.detail}")
        unknowns = self.unknown_rows()
        if unknowns:
            lines.append(
                f"  {len(unknowns)} problem(s) unresolved within budget "
                "(anytime verdicts, re-run with a larger budget to refine)"
            )
        return "\n".join(lines)


def classify_constant_time(
    problems: Iterable,
    max_steps: int = 3,
    time_limit: Optional[float] = None,
    max_configs: Optional[int] = None,
    max_universe: int = 4096,
    use_cache: bool = True,
) -> ClassificationPanel:
    """Build a :class:`ClassificationPanel` over ``problems``.

    Each problem gets a *fresh* :class:`~repro.utils.budget.Budget` with
    the given per-problem limits, so one hopeless instance cannot starve
    the rest of the panel — the production posture for the heavy-traffic
    landscape service the roadmap targets.
    """
    from repro.decidability.constant_time import (
        CONSTANT,
        NOT_CONSTANT,
        semidecide_constant_time,
    )
    from repro.utils.budget import Budget

    panel = ClassificationPanel(
        "constant-time solvability on trees (Question 1.7, anytime)"
    )
    for problem in problems:
        budget = None
        if time_limit is not None or max_configs is not None:
            budget = Budget(deadline=time_limit, max_configs=max_configs)
        verdict = semidecide_constant_time(
            problem,
            max_steps=max_steps,
            max_universe=max_universe,
            use_cache=use_cache,
            budget=budget,
        )
        if verdict.verdict == CONSTANT:
            panel.add(problem.name, "O(1)", f"{verdict.rounds} rounds, algorithm synthesized")
        elif verdict.verdict == NOT_CONSTANT:
            panel.add(
                problem.name,
                "Omega(log* n)",
                f"fixed point at depth {verdict.gap_result.fixed_point_at}",
            )
        else:
            step = verdict.unknown_since_step
            label = "UNKNOWN" if step is None else f"UNKNOWN(>= step {step})"
            diagnostics = verdict.budget_diagnostics
            detail = verdict.gap_result.note
            if diagnostics is not None:
                detail = (
                    f"{diagnostics.reason} limit after {diagnostics.elapsed:.2f}s, "
                    f"{diagnostics.configurations} configs"
                )
            logger.info("landscape: %s unresolved (%s)", problem.name, detail)
            panel.add(problem.name, label, detail)
    return panel
