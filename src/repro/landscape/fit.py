"""Growth-shape fitting for measured localities / probe counts.

Figure 1 plots complexity *classes*; our benchmarks measure concrete
locality/probe series over a grid of ``n`` and need to attribute each
series to a class.  :func:`fit_growth` fits every candidate shape
``value ≈ a · shape(n) + b`` (non-negative slope, least squares) and
scores it by residual error, preferring simpler shapes on near-ties so
that a flat series is reported as ``O(1)`` rather than as a degenerate
``Θ(log n)`` with slope 0.

The candidate set mirrors the classes appearing in the paper's four
panels; callers can restrict it (e.g. the grid panel only distinguishes
``O(1) / Θ(log* n) / Θ(n^{1/d})``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import LandscapeError
from repro.utils.numbers import iterated_log

#: Candidate shapes, ordered from simplest to fastest-growing; ties in
#: fit quality resolve toward the earlier entry.
GROWTH_SHAPES: Dict[str, Callable[[float], float]] = {
    "O(1)": lambda n: 1.0,
    "Theta(log log* n)": lambda n: math.log2(max(2, iterated_log(n))),
    "Theta(log* n)": lambda n: float(iterated_log(n)),
    "Theta(log log n)": lambda n: math.log2(max(2.0, math.log2(max(2.0, n)))),
    "Theta(log n)": lambda n: math.log2(max(2.0, n)),
    "Theta(n^{1/3})": lambda n: n ** (1.0 / 3.0),
    "Theta(n^{1/2})": lambda n: math.sqrt(n),
    "Theta(n)": lambda n: float(n),
}


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one series against the candidate shapes.

    At laptop-reachable ``n``, some classes are *affinely equivalent* on
    any sample — ``Θ(log* n)`` and ``Θ(log log* n)`` take two or three
    values on the whole range and fit each other exactly — so a single
    "best" label would overclaim.  ``best`` is the simplest class among
    the statistically tied front-runners; ``tied`` lists every class
    whose residual is within the tie tolerance of the minimum, and
    downstream gap checks treat a series as gap-violating only when *all*
    of its tied classes lie in the forbidden band.
    """

    best: str
    #: Every class fitting within the tie tolerance of the best residual,
    #: in candidate (simplest-first) order.
    tied: Tuple[str, ...]
    #: Normalized residual (RMS error / max |value|) per candidate.
    scores: Dict[str, float]
    slope: float
    intercept: float

    def __str__(self) -> str:
        return f"{self.best} (residual {self.scores[self.best]:.3f})"


def _least_squares(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float, float]:
    """Fit ``y = a x + b`` with ``a >= 0``; return (a, b, rms residual)."""
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        slope = 0.0
    else:
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
        slope = max(0.0, slope)
    intercept = mean_y - slope * mean_x
    residual = math.sqrt(
        sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)) / count
    )
    return slope, intercept, residual


def fit_growth(
    ns: Sequence[int],
    values: Sequence[float],
    shapes: Optional[Dict[str, Callable[[float], float]]] = None,
    tie_tolerance: float = 0.01,
) -> FitResult:
    """Attribute a measured series to its best-fitting growth class.

    ``tie_tolerance`` is relative to the series' value range: a simpler
    shape within that margin of the best residual wins (Occam tie-break).

    Malformed series raise a typed :class:`~repro.exceptions.LandscapeError`:
    mismatched ``ns``/``values`` lengths (a dropped cell must surface as
    a quarantined row, never as a silently shifted pairing), fewer than
    two samples, or non-finite measurements.
    """
    if len(ns) != len(values):
        raise LandscapeError(
            f"mismatched series lengths: {len(ns)} sample point(s) but "
            f"{len(values)} value(s)"
        )
    if len(ns) < 2:
        raise LandscapeError("need two or more (n, value) samples")
    bad = [(n, v) for n, v in zip(ns, values) if not math.isfinite(v)]
    if bad:
        raise LandscapeError(f"non-finite measurement(s) in series: {bad!r}")
    shapes = shapes or GROWTH_SHAPES
    scale = max((abs(v) for v in values), default=1.0) or 1.0

    fits: Dict[str, Tuple[float, float, float]] = {}
    scores: Dict[str, float] = {}
    for name, shape in shapes.items():
        xs = [shape(n) for n in ns]
        slope, intercept, residual = _least_squares(xs, values)
        fits[name] = (slope, intercept, residual)
        scores[name] = residual / scale

    best_residual = min(scores.values())
    tied = tuple(
        name for name in shapes if scores[name] <= best_residual + tie_tolerance
    )
    best = tied[0]
    slope, intercept, _ = fits[best]
    return FitResult(
        best=best, tied=tied, scores=scores, slope=slope, intercept=intercept
    )
