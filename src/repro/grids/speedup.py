"""Propositions 5.3–5.5: the oriented-grid speedup, executable parts.

The proof of Theorem 5.1 has three steps:

* **Prop. 5.3** — LOCAL algorithms run in PROD-LOCAL: realized by
  :func:`repro.grids.prod_local.combined_ids`.
* **Prop. 5.4** — every ``o(log* n)`` PROD-LOCAL algorithm has an
  order-invariant twin (Ramsey; existential — see DESIGN.md).  The
  executable counterpart is
  :func:`repro.grids.prod_local.check_prod_order_invariance`.
* **Prop. 5.5** — an order-invariant PROD-LOCAL algorithm is "fooled"
  with a fixed ``n₀`` and fed the canonical identifier order the
  orientation provides for free (``id_i(u) < id_j(v)`` iff ``i < j``, or
  ``i = j`` and ``v`` lies further along dimension ``i``), yielding an
  O(1)-round LOCAL algorithm.  :func:`coordinate_prod_ids` constructs that
  canonical assignment and :func:`fooled_grid_algorithm` pins the
  node-count parameter, so the composition is a runnable synthesis of the
  constant-round algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import AlgorithmError
from repro.graphs.balls import Ball
from repro.grids.oriented import OrientedGrid
from repro.local.model import LocalAlgorithm
from repro.local.order_invariant import fooled_constant_algorithm


def coordinate_prod_ids(grid: OrientedGrid) -> List[Tuple[int, ...]]:
    """The canonical PROD-LOCAL identifiers induced by the orientation.

    Dimension ``i``'s coordinate ``c`` receives identifier
    ``i · max_side + c + 1``: distinct pools per dimension, ordered by
    position along the (oriented) dimension — exactly the order
    Proposition 5.5 reads off the orientation.
    """
    max_side = max(grid.sides) + 1
    ids: List[Tuple[int, ...]] = []
    for v in range(grid.num_nodes):
        coords = grid.coords_of(v)
        ids.append(
            tuple(
                dim * max_side + coords[dim] + 1 for dim in range(grid.dimensions)
            )
        )
    return ids


def coordinate_ids_in_ball(ball: Ball, dimensions: int) -> Dict[int, Tuple[int, ...]]:
    """Relative coordinates of every ball node, from orientation inputs.

    This is the local computation underlying Prop. 5.5: the orientation
    labels alone order the nodes of a ball along every dimension, no
    identifiers needed.  Offsets are relative to the center (all zeros).
    """
    offsets: Dict[int, Tuple[int, ...]] = {0: tuple([0] * dimensions)}
    stack = [0]
    while stack:
        local = stack.pop()
        base = offsets[local]
        for port, entry in ball.adj[local].items():
            neighbor = entry[0]
            if neighbor in offsets:
                continue
            label = ball.inputs[local][port]
            if label is None:
                raise AlgorithmError("coordinate derivation needs orientation inputs")
            dim, direction = label
            shifted = list(base)
            shifted[dim] += direction
            offsets[neighbor] = tuple(shifted)
            stack.append(neighbor)
    return offsets


def fooled_grid_algorithm(inner: LocalAlgorithm, n0: int) -> LocalAlgorithm:
    """Proposition 5.5: pin the node-count parameter of an order-invariant
    PROD-LOCAL algorithm to ``n₀``.

    Combined with :func:`coordinate_prod_ids` (the orientation-derived
    identifier order), this turns the algorithm into a constant-round
    LOCAL algorithm; the integration tests verify correctness on grids far
    larger than ``n₀``.
    """
    return fooled_constant_algorithm(inner, n0)
