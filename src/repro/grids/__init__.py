"""Oriented d-dimensional toroidal grids and the PROD-LOCAL model (§5)."""

from repro.grids.oriented import OrientedGrid
from repro.grids.prod_local import (
    check_prod_order_invariance,
    combined_ids,
    prod_ids,
)
from repro.grids.algorithms import (
    DimensionLengthProbe,
    FollowDimensionOrientation,
    GridProductColoring,
)
from repro.grids.speedup import (
    coordinate_ids_in_ball,
    coordinate_prod_ids,
    fooled_grid_algorithm,
)

__all__ = [
    "OrientedGrid",
    "prod_ids",
    "combined_ids",
    "check_prod_order_invariance",
    "GridProductColoring",
    "FollowDimensionOrientation",
    "DimensionLengthProbe",
    "fooled_grid_algorithm",
    "coordinate_ids_in_ball",
    "coordinate_prod_ids",
]
