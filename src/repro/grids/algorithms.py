"""Algorithms populating the oriented-grid landscape panel (Fig. 1, §5).

* :class:`FollowDimensionOrientation` — O(1) class: a sinkless (in fact
  everywhere-outgoing) orientation read directly off the grid's edge
  orientations in 0 rounds — a problem that needs Ω(log log n) rounds on
  trees, showing how much structure the orientation gives away;
* :class:`GridProductColoring` — Θ(log* n) class: per-dimension
  Cole–Vishkin along the (consistently oriented) dimension lines, combined
  into a proper ``3^d``-coloring of the torus;
* :class:`DimensionLengthProbe` — Θ(n^{1/d}) class: measure the torus
  side length along dimension 0 by walking the dimension line until it
  wraps (global in the paper's Corollary 1.5 sense).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import AlgorithmError
from repro.local.algorithms.cole_vishkin import palette_schedule
from repro.local.iterative import IterativeAlgorithm
from repro.local.model import LocalAlgorithm, NodeContext


def _directional_ports(
    inputs: Tuple[Any, ...], dimensions: int
) -> Tuple[List[Optional[int]], List[Optional[int]]]:
    """Forward and backward port per dimension, from orientation inputs."""
    forward: List[Optional[int]] = [None] * dimensions
    backward: List[Optional[int]] = [None] * dimensions
    for port, label in enumerate(inputs):
        if label is None:
            raise AlgorithmError("grid algorithms require orientation inputs")
        dim, direction = label
        side = forward if direction == +1 else backward
        if side[dim] is not None:
            raise AlgorithmError(f"duplicate port along dimension {dim}")
        side[dim] = port
    return forward, backward


class FollowDimensionOrientation(LocalAlgorithm):
    """0-round sinkless orientation: orient every edge forward."""

    name = "follow-orientation"

    def radius(self, n: int) -> int:
        return 0

    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        outputs = {}
        for port in range(ctx.degree):
            label = ctx.input(port)
            if label is None:
                raise AlgorithmError("follow-orientation requires orientation inputs")
            outputs[port] = "O" if label[1] == +1 else "I"
        return outputs


class GridProductColoring(IterativeAlgorithm):
    """Proper 3^d-coloring of an oriented d-dimensional torus, O(log* n).

    Each dimension's lines are consistently oriented cycles, so plain
    Cole–Vishkin runs along every dimension simultaneously (seeded by the
    per-dimension PROD-LOCAL identifier when IDs are tuples, or by the
    global identifier otherwise — both are proper along the lines).  The
    output color is the base-3 combination of the d per-dimension colors;
    neighbors along dimension ``i`` differ in digit ``i``.
    """

    finalize_lookahead = 0

    def __init__(self, dimensions: int, id_exponent: int = 3, label_prefix: str = "c"):
        self.dimensions = dimensions
        self.id_exponent = id_exponent
        self.label_prefix = label_prefix
        self.name = f"grid-product-coloring(d={dimensions})"

    def initial_palette(self, n: int) -> int:
        # Per-dimension PROD identifiers live below (d+1) · n^exponent.
        return max(2, (self.dimensions + 1) * n**self.id_exponent + 1)

    def color_rounds(self, n: int) -> int:
        return len(palette_schedule(self.initial_palette(n))) + 3

    def rounds(self, n: int) -> int:
        return self.color_rounds(n)

    def final_palette(self, n: int) -> int:
        return 3**self.dimensions

    def initial_state(self, node_id, degree, inputs, bits, n):
        if node_id is None:
            raise AlgorithmError(f"{self.name} requires identifiers")
        if isinstance(node_id, tuple):
            if len(node_id) != self.dimensions:
                raise AlgorithmError(
                    f"expected {self.dimensions} per-dimension identifiers"
                )
            colors = list(node_id)
        else:
            colors = [node_id] * self.dimensions
        forward, backward = _directional_ports(inputs, self.dimensions)
        if any(port is None for port in forward) or any(
            port is None for port in backward
        ):
            raise AlgorithmError("torus node missing a directional port")
        return (tuple(colors), tuple(forward), tuple(backward))

    def step(self, round_index, state, neighbor_states, n):
        colors, forward, backward = state
        cv_rounds = len(palette_schedule(self.initial_palette(n)))
        updated = []
        for dim in range(self.dimensions):
            successor = neighbor_states[forward[dim]]
            successor_color = None if successor is None else successor[0][dim]
            if round_index < cv_rounds:
                updated.append(self._cv_step(colors[dim], successor_color))
                continue
            retiring = 5 - (round_index - cv_rounds)
            if colors[dim] != retiring:
                updated.append(colors[dim])
                continue
            # Only the two neighbors on this dimension's line constrain
            # the dimension-`dim` color.
            taken = set()
            for port in (forward[dim], backward[dim]):
                neighbor = neighbor_states[port]
                if neighbor is not None:
                    taken.add(neighbor[0][dim])
            for candidate in range(3):
                if candidate not in taken:
                    updated.append(candidate)
                    break
            else:
                raise AlgorithmError("no free color during grid retirement")
        return (tuple(updated), forward, backward)

    @staticmethod
    def _cv_step(color: int, successor_color: Optional[int]) -> int:
        if successor_color is None:
            return color & 1
        differing = color ^ successor_color
        if differing == 0:
            raise AlgorithmError("equal colors along a dimension line")
        index = (differing & -differing).bit_length() - 1
        return 2 * index + ((color >> index) & 1)

    def color_of(self, state: Any) -> int:
        colors = state[0]
        total = 0
        for digit in reversed(colors):
            total = total * 3 + digit
        return total

    def finalize(self, state, neighbor_states, degree, inputs, n) -> Dict[int, Any]:
        label = f"{self.label_prefix}{self.color_of(state)}"
        return {port: label for port in range(degree)}


class DimensionLengthProbe(LocalAlgorithm):
    """Output the torus side length along dimension 0: Θ(n^{1/d}).

    Adaptive: grow the ball until the forward walk along dimension 0
    wraps back to the center; the measured locality is ~half the side
    length, pinning the problem in the global class of Corollary 1.5.
    """

    name = "dimension-length-probe"

    def radius(self, n: int) -> int:
        return max(1, n)

    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        limit = self.radius(ctx.declared_n)
        for radius in range(1, limit + 1):
            ball = ctx.ball(radius)
            length = self._walk_length(ball)
            if length is not None:
                return {port: length for port in range(ball.center_degree())}
        raise AlgorithmError("dimension-0 line never wrapped; not a torus?")

    @staticmethod
    def _walk_length(ball) -> Optional[int]:
        current = 0
        steps = 0
        while True:
            forward_port = None
            for port in range(ball.degrees[current]):
                label = ball.inputs[current][port]
                if label == (0, +1):
                    forward_port = port
                    break
            if forward_port is None:
                raise AlgorithmError("missing orientation inputs")
            entry = ball.adj[current].get(forward_port)
            if entry is None:
                return None  # walked off the ball; need a bigger radius
            current = entry[0]
            steps += 1
            if current == 0:
                return steps
