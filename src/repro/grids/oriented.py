"""Oriented d-dimensional toroidal grids (§5).

An oriented grid is a torus whose edges carry a dimension label from
``[d]`` and a consistent orientation within each dimension (§1.3, §5).
Both pieces of structure are exposed the way the rest of the library
expects: as *input labels* ``(dimension, direction)`` on half-edges, with
``direction = +1`` on the half-edge pointing "forward" along its
dimension.  Nodes are indexed in row-major order of their coordinates.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.core import Graph, HalfEdgeLabeling


class OrientedGrid:
    """A toroidal oriented grid with side lengths ``sides``.

    ``sides[i] >= 3`` is required so the torus stays a simple graph
    (side 2 would create parallel edges, side 1 self-loops).
    """

    def __init__(self, sides: Sequence[int]):
        self.sides = tuple(sides)
        if not self.sides:
            raise GraphError("need at least one dimension")
        if any(side < 3 for side in self.sides):
            raise GraphError("toroidal sides must be >= 3 to stay simple")
        self.dimensions = len(self.sides)
        self.num_nodes = 1
        for side in self.sides:
            self.num_nodes *= side
        edges: List[Tuple[int, int]] = []
        for coords in self.coordinates():
            v = self.index_of(coords)
            for dim in range(self.dimensions):
                forward = self.index_of(self._shift(coords, dim, +1))
                edges.append((v, forward))
        # Deduplicate (each edge appears once as (v, forward)).
        self.graph = Graph(self.num_nodes, edges)

    # ----------------------------------------------------------- coordinates
    def coordinates(self):
        return itertools.product(*(range(side) for side in self.sides))

    def index_of(self, coords: Sequence[int]) -> int:
        index = 0
        for coordinate, side in zip(coords, self.sides):
            index = index * side + (coordinate % side)
        return index

    def coords_of(self, index: int) -> Tuple[int, ...]:
        coords = []
        for side in reversed(self.sides):
            coords.append(index % side)
            index //= side
        return tuple(reversed(coords))

    def _shift(self, coords: Sequence[int], dim: int, delta: int) -> Tuple[int, ...]:
        shifted = list(coords)
        shifted[dim] = (shifted[dim] + delta) % self.sides[dim]
        return tuple(shifted)

    def neighbor_along(self, v: int, dim: int, delta: int) -> int:
        return self.index_of(self._shift(self.coords_of(v), dim, delta))

    # -------------------------------------------------------------- labeling
    def orientation_inputs(self) -> HalfEdgeLabeling:
        """Input labels ``(dimension, ±1)`` on every half-edge."""
        labeling = HalfEdgeLabeling(self.graph)
        for v in range(self.num_nodes):
            coords = self.coords_of(v)
            for dim in range(self.dimensions):
                forward = self.index_of(self._shift(coords, dim, +1))
                backward = self.index_of(self._shift(coords, dim, -1))
                port_forward = self.graph.port_to(v, forward)
                port_backward = self.graph.port_to(v, backward)
                if port_forward is None or port_backward is None:
                    raise GraphError("grid adjacency inconsistent")
                labeling[(v, port_forward)] = (dim, +1)
                labeling[(v, port_backward)] = (dim, -1)
        return labeling

    def port_along(self, v: int, dim: int, delta: int) -> int:
        """The port of ``v`` leading one step along ``dim``."""
        neighbor = self.neighbor_along(v, dim, delta)
        port = self.graph.port_to(v, neighbor)
        if port is None:
            raise GraphError("grid adjacency inconsistent")
        return port

    def __repr__(self) -> str:
        return f"OrientedGrid(sides={self.sides})"
