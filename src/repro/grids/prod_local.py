"""The PROD-LOCAL model (Definition 5.2).

In PROD-LOCAL every node receives ``d`` identifiers, one per dimension,
with ``id_i(u) = id_i(v)`` iff ``u`` and ``v`` share the ``i``-th
coordinate.  We represent them as a per-node *tuple*; Proposition 5.3's
direction "LOCAL ⇒ PROD-LOCAL is at least as strong" is realized by
:func:`combined_ids`, which flattens the tuple into the globally unique
integer ``Σ id_i · n^{c(i-1)}`` so ordinary LOCAL algorithms run
unchanged.

Order invariance for PROD-LOCAL (used by Prop. 5.4/5.5) compares the
*pooled* order of all per-dimension identifiers, which is what
:func:`check_prod_order_invariance` perturbs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.graphs.core import HalfEdgeLabeling
from repro.grids.oriented import OrientedGrid
from repro.local.model import LocalAlgorithm, run_local_algorithm


def prod_ids(grid: OrientedGrid, seed: int = 0, exponent: int = 2) -> List[Tuple[int, ...]]:
    """Per-node tuples of d per-dimension identifiers.

    For each dimension ``i``, the ``sides[i]`` coordinate values receive
    distinct random identifiers from a polynomial range; nodes sharing a
    coordinate share that identifier, exactly as Definition 5.2 demands.
    Identifier pools of different dimensions are disjoint (offset per
    dimension) so the pooled order is total.
    """
    rng = random.Random(seed)
    universe = max(4, grid.num_nodes**exponent)
    coordinate_ids: List[List[int]] = []
    for dim, side in enumerate(grid.sides):
        values = rng.sample(range(1, universe + 1), side)
        offset = dim * universe
        coordinate_ids.append([value + offset for value in values])
    tuples: List[Tuple[int, ...]] = []
    for v in range(grid.num_nodes):
        coords = grid.coords_of(v)
        tuples.append(
            tuple(coordinate_ids[dim][coords[dim]] for dim in range(grid.dimensions))
        )
    return tuples


def combined_ids(id_tuples: Sequence[Tuple[int, ...]], base: Optional[int] = None) -> List[int]:
    """Proposition 5.3: flatten d-tuples into globally unique integers.

    ``I = Σ_i id_i · base^(i-1)`` with ``base`` exceeding every
    per-dimension identifier; distinct tuples give distinct integers.
    """
    if base is None:
        base = 1 + max(value for ids in id_tuples for value in ids)
    flattened = []
    for ids in id_tuples:
        total = 0
        for value in reversed(ids):
            total = total * base + value
        flattened.append(total)
    if len(set(flattened)) != len(flattened):
        raise ValueError("combined identifiers collided; tuples were not unique")
    return flattened


def check_prod_order_invariance(
    algorithm: LocalAlgorithm,
    grid: OrientedGrid,
    id_tuples: Sequence[Tuple[int, ...]],
    trials: int = 5,
    seed: int = 0,
) -> bool:
    """Rerun under pooled-order-preserving reassignments of the d id pools.

    Definition 5.2's order-invariance compares ``id_i(u)`` against
    ``id_j(v)`` across dimensions, so the reassignment remaps the *pooled*
    set of identifier values monotonically.
    """
    inputs = grid.orientation_inputs()
    baseline = run_local_algorithm(
        grid.graph, algorithm, inputs=inputs, ids=list(id_tuples)
    )
    rng = random.Random(seed)
    pooled = sorted({value for ids in id_tuples for value in ids})
    for _ in range(trials):
        fresh = sorted(rng.sample(range(1, 50 * (len(pooled) + 1)), len(pooled)))
        remap = dict(zip(pooled, fresh))
        reassigned = [tuple(remap[value] for value in ids) for ids in id_tuples]
        rerun = run_local_algorithm(
            grid.graph, algorithm, inputs=inputs, ids=reassigned
        )
        for half_edge, label in baseline.outputs.items():
            if rerun.outputs.get(half_edge) != label:
                return False
    return True
