"""Canonical forms and stable content hashes for node-edge-checkable LCLs.

Round elimination meets the *same* problem under many different label
spellings: ``R̄(R(Π))`` names its outputs as frozensets-of-frozensets,
hygiene renames survivors, and isomorphic fixed points recur with fresh
labels every iteration.  Caching operator results (and detecting fixed
points) therefore needs a notion of identity that is blind to output
label names but exact about structure.

This module computes, for any :class:`NodeEdgeCheckableLCL`:

* a **canonical order** of ``Σ_out`` — a deterministic ordering such that
  relabeling the outputs of a problem does not change the induced
  index structure (for every problem the search below finds it; see the
  completeness caveat);
* a **canonical encoding** — the node/edge/``g`` constraints rewritten
  over output indices in canonical order, as a nested tuple of plain
  ints and input-label keys;
* a **canonical hash** — a SHA-256 digest of that encoding.  The digest
  is independent of ``PYTHONHASHSEED`` and of the interpreter process:
  it only ever hashes ``repr`` of ints, strings, and tuples.

Identity semantics
------------------
Input labels are part of the *instance*, not of the solution, so they are
encoded verbatim (two problems with renamed inputs are **not**
identified — matching :meth:`NodeEdgeCheckableLCL.is_isomorphic`).  The
problem ``name`` never enters the encoding.

Equal canonical encodings always imply isomorphism: each problem admits
an output ordering mapping it onto the same indexed structure, and the
composition of those orderings is an output bijection.  The converse
(isomorphic problems always hash equal) holds whenever the refinement
classes are small enough for the permutation search below to be
exhaustive; beyond :data:`PERMUTATION_BUDGET` candidate orders the
search degrades to a deterministic but name-sensitive tie-break, which
can only cause cache misses, never wrong hits.
:func:`canonically_equal` compensates by falling back to the exact
backtracking isomorphism test in that (pathological) regime.

The module also provides the serialization used by the operator cache
(:mod:`repro.utils.cache`): results of ``R`` / ``R̄`` / ``simplify`` are
stored *relative to the canonical order of their input problem*
(:func:`encode_result`), so a cached entry computed for one spelling of
a problem can be decoded against any isomorphic spelling
(:func:`decode_result`) and yields the correctly relabeled result.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from functools import lru_cache
from typing import Any, Dict, List, Sequence, Tuple

from repro.exceptions import ProblemDefinitionError, ReproError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.multiset import Multiset, label_sort_key

#: Maximum number of candidate output orderings examined by the
#: canonical search.  Refinement almost always splits the alphabet into
#: singleton classes (or genuinely interchangeable orbits, for which any
#: order yields the same encoding), so the budget is only reached on
#: adversarially symmetric problems.
PERMUTATION_BUDGET = 720


class UnencodableLabelError(ReproError):
    """A label cannot be serialized for the operator cache."""


# ------------------------------------------------------------------ refinement
def _initial_colors(
    problem: NodeEdgeCheckableLCL, sigma_in_order: Sequence[Any]
) -> Dict[Any, int]:
    """Isomorphism-invariant starting partition of the output labels."""
    signatures = {}
    degrees = sorted(problem.node_constraints)
    for a in problem.sigma_out:
        g_pattern = tuple(a in problem.g[i] for i in sigma_in_order)
        node_pattern = tuple(
            (
                degree,
                sum(1 for c in problem.node_constraints[degree] if a in c),
                sum(c.count(a) for c in problem.node_constraints[degree]),
            )
            for degree in degrees
        )
        edge_pattern = (
            sum(1 for c in problem.edge_constraint if a in c),
            sum(c.count(a) for c in problem.edge_constraint),
        )
        signatures[a] = (g_pattern, node_pattern, edge_pattern)
    return _colors_from_signatures(signatures)


def _colors_from_signatures(signatures: Dict[Any, Any]) -> Dict[Any, int]:
    ordered = sorted(set(signatures.values()))
    index = {signature: i for i, signature in enumerate(ordered)}
    return {a: index[signatures[a]] for a in signatures}


def _refine(problem: NodeEdgeCheckableLCL, sigma_in_order: Sequence[Any]) -> Dict[Any, int]:
    """Color refinement: iterate role signatures to a stable partition."""
    colors = _initial_colors(problem, sigma_in_order)
    while True:
        signatures = {}
        for a in problem.sigma_out:
            edge_view = tuple(
                sorted(
                    tuple(sorted(colors[x] for x in c.items))
                    for c in problem.edge_constraint
                    if a in c
                )
            )
            node_view = tuple(
                sorted(
                    (degree, tuple(sorted(colors[x] for x in c.items)))
                    for degree, configurations in problem.node_constraints.items()
                    for c in configurations
                    if a in c
                )
            )
            signatures[a] = (colors[a], edge_view, node_view)
        refined = _colors_from_signatures(signatures)
        if len(set(refined.values())) == len(set(colors.values())):
            return refined
        colors = refined


# ------------------------------------------------------------------- encoding
def _encode_with_order(
    problem: NodeEdgeCheckableLCL,
    order: Sequence[Any],
    sigma_in_order: Sequence[Any],
) -> tuple:
    index = {a: i for i, a in enumerate(order)}
    node = tuple(
        (
            degree,
            tuple(
                sorted(
                    tuple(sorted(index[x] for x in c.items))
                    for c in configurations
                )
            ),
        )
        for degree, configurations in sorted(problem.node_constraints.items())
    )
    edge = tuple(
        sorted(
            tuple(sorted(index[x] for x in c.items))
            for c in problem.edge_constraint
        )
    )
    g = tuple(
        tuple(sorted(index[x] for x in problem.g[i])) for i in sigma_in_order
    )
    inputs = tuple(label_sort_key(i) for i in sigma_in_order)
    return (len(order), inputs, node, edge, g)


def _candidate_orders(
    classes: List[List[Any]], budget: int
) -> Tuple[List[Tuple[Any, ...]], bool]:
    """All class-respecting orders, or a deterministic fallback.

    Returns ``(orders, complete)`` where ``complete`` is False iff some
    class was frozen to its ``label_sort_key`` order to stay within
    ``budget`` (making the search non-exhaustive).
    """
    permute = [True] * len(classes)
    def total() -> int:
        return math.prod(
            math.factorial(len(c)) if p else 1 for c, p in zip(classes, permute)
        )
    complete = True
    while total() > budget:
        # Freeze the largest still-permuted class (the biggest factorial win).
        candidates = [i for i, p in enumerate(permute) if p and len(classes[i]) > 1]
        if not candidates:
            break
        largest = max(candidates, key=lambda i: len(classes[i]))
        permute[largest] = False
        complete = False
    per_class = [
        list(itertools.permutations(c)) if p else [tuple(c)]
        for c, p in zip(classes, permute)
    ]
    orders = [
        tuple(itertools.chain.from_iterable(parts))
        for parts in itertools.product(*per_class)
    ]
    return orders, complete


@lru_cache(maxsize=512)
def _canonical_state(problem: NodeEdgeCheckableLCL) -> Tuple[Tuple[Any, ...], tuple, str, bool]:
    """``(order, encoding, hash, complete)`` for a problem, memoized.

    The memo key uses the problem's structural ``__eq__`` / ``__hash__``,
    so repeated operator calls on the same object (or equal copies) pay
    the canonicalization once.
    """
    sigma_in_order = tuple(sorted(problem.sigma_in, key=label_sort_key))
    colors = _refine(problem, sigma_in_order)
    classes: Dict[int, List[Any]] = {}
    for label in sorted(problem.sigma_out, key=label_sort_key):
        classes.setdefault(colors[label], []).append(label)
    ordered_classes = [classes[color] for color in sorted(classes)]
    orders, complete = _candidate_orders(ordered_classes, PERMUTATION_BUDGET)
    best_order = None
    best_encoding = None
    for order in orders:
        encoding = _encode_with_order(problem, order, sigma_in_order)
        if best_encoding is None or encoding < best_encoding:
            best_encoding = encoding
            best_order = order
    digest = hashlib.sha256(repr(best_encoding).encode("utf-8")).hexdigest()
    return best_order, best_encoding, digest, complete


def canonical_order(problem: NodeEdgeCheckableLCL) -> Tuple[Any, ...]:
    """The output labels in canonical order (the argmin of the search)."""
    return _canonical_state(problem)[0]


def canonical_encoding(problem: NodeEdgeCheckableLCL) -> tuple:
    """The canonical index-structure encoding (nested tuple of ints)."""
    return _canonical_state(problem)[1]


def canonical_hash(problem: NodeEdgeCheckableLCL) -> str:
    """SHA-256 of the canonical encoding: stable across processes and
    independent of output label names and of the problem ``name``."""
    return _canonical_state(problem)[2]


def is_search_exhaustive(problem: NodeEdgeCheckableLCL) -> bool:
    """Did the canonical search stay within :data:`PERMUTATION_BUDGET`?

    When True (the overwhelmingly common case), canonical-hash equality
    is *equivalent* to isomorphism for this problem.
    """
    return _canonical_state(problem)[3]


def canonically_equal(
    first: NodeEdgeCheckableLCL, second: NodeEdgeCheckableLCL
) -> bool:
    """Isomorphism up to output relabeling, decided via canonical hashes.

    Hash equality always implies isomorphism.  If the hashes differ and
    either search was non-exhaustive, falls back to the exact
    backtracking test so the answer stays complete.
    """
    if canonical_hash(first) == canonical_hash(second):
        return True
    if is_search_exhaustive(first) and is_search_exhaustive(second):
        return False
    return first.is_isomorphic(second)


def canonical_form(problem: NodeEdgeCheckableLCL) -> NodeEdgeCheckableLCL:
    """The problem with outputs renamed to ``"0", "1", …`` in canonical
    order — two isomorphic problems have equal (``==``) canonical forms
    whenever their searches were exhaustive."""
    order = canonical_order(problem)
    mapping = {label: str(i) for i, label in enumerate(order)}
    return problem.rename_outputs(mapping)


def clear_canonical_memo() -> None:
    """Drop the canonicalization memo (mostly for tests)."""
    _canonical_state.cache_clear()


# ----------------------------------------------------- cache (de)serialization
def _encode_label(label: Any, base_index: Dict[Any, int]) -> Any:
    """JSON-able encoding of a result label relative to the base alphabet.

    Base labels are referenced by canonical index (``["b", i]``) so the
    encoding is spelling-independent; operator results only ever contain
    base labels (``simplify``) or frozensets over them (``R`` / ``R̄``),
    but plain strings/ints are supported for robustness.
    """
    if label in base_index:
        return ["b", base_index[label]]
    if isinstance(label, frozenset):
        return [
            "f",
            [_encode_label(x, base_index) for x in sorted(label, key=label_sort_key)],
        ]
    if isinstance(label, bool):
        return ["B", bool(label)]
    if isinstance(label, str):
        return ["s", label]
    if isinstance(label, int):
        return ["i", int(label)]
    raise UnencodableLabelError(
        f"label {label!r} of type {type(label).__qualname__} cannot be cached"
    )


def _decode_label(encoded: Any, base_order: Sequence[Any]) -> Any:
    tag, value = encoded
    if tag == "b":
        return base_order[value]
    if tag == "f":
        return frozenset(_decode_label(x, base_order) for x in value)
    if tag == "B":
        return bool(value)
    if tag == "s":
        return str(value)
    if tag == "i":
        return int(value)
    raise ProblemDefinitionError(f"unknown cache label tag {tag!r}")


def encode_result(
    base: NodeEdgeCheckableLCL, result: NodeEdgeCheckableLCL
) -> dict:
    """Serialize an operator result relative to ``base``'s canonical order.

    The payload contains only ints, strings, and lists (JSON-able), no
    label spellings of ``base`` — decoding against any isomorphic
    spelling of ``base`` yields the correctly translated result.  The
    result ``name`` is deliberately excluded (recomputed on decode).
    Raises :class:`UnencodableLabelError` for exotic label types.
    """
    if result.sigma_in != base.sigma_in:
        raise UnencodableLabelError(
            "operator result must preserve sigma_in to be cacheable"
        )
    base_index = {label: i for i, label in enumerate(canonical_order(base))}
    out_sorted = sorted(result.sigma_out, key=label_sort_key)
    out_index = {label: i for i, label in enumerate(out_sorted)}
    sigma_in_order = sorted(base.sigma_in, key=label_sort_key)
    return {
        "v": 1,
        "labels": [_encode_label(label, base_index) for label in out_sorted],
        "node": [
            [
                degree,
                sorted(
                    sorted(out_index[x] for x in c.items) for c in configurations
                ),
            ]
            for degree, configurations in sorted(result.node_constraints.items())
        ],
        "edge": sorted(
            sorted(out_index[x] for x in c.items) for c in result.edge_constraint
        ),
        "g": [
            sorted(out_index[x] for x in result.g[input_label])
            for input_label in sigma_in_order
        ],
    }


def decode_result(
    base: NodeEdgeCheckableLCL, payload: dict, name: str
) -> NodeEdgeCheckableLCL:
    """Rebuild a cached operator result against ``base``'s labels.

    Inverse of :func:`encode_result` modulo the relabeling of ``base``.
    Raises (``KeyError`` / ``IndexError`` /
    :class:`~repro.exceptions.ProblemDefinitionError`) on structurally
    corrupt payloads — callers treat any failure as a cache miss.
    """
    if payload.get("v") != 1:
        raise ProblemDefinitionError(f"unsupported cache payload version: {payload.get('v')!r}")
    base_order = canonical_order(base)
    labels = [_decode_label(encoded, base_order) for encoded in payload["labels"]]
    node_constraints = {
        int(degree): [Multiset(labels[i] for i in c) for c in configurations]
        for degree, configurations in payload["node"]
    }
    edge_constraint = [Multiset(labels[i] for i in c) for c in payload["edge"]]
    sigma_in_order = sorted(base.sigma_in, key=label_sort_key)
    if len(payload["g"]) != len(sigma_in_order):
        raise ProblemDefinitionError("cache payload g-table has wrong arity")
    g = {
        input_label: frozenset(labels[i] for i in indices)
        for input_label, indices in zip(sigma_in_order, payload["g"])
    }
    return NodeEdgeCheckableLCL(
        sigma_in=base.sigma_in,
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=edge_constraint,
        g=g,
        name=name,
    )
