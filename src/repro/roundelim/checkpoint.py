"""Atomic, corruption-checked checkpoints for :class:`ProblemSequence`.

A sequence walk ``Π, f(Π), f²(Π), …`` is exactly the kind of computation
that dies halfway: each step can take doubly-exponentially longer than
the previous one.  The operator cache already persists *operator*
results, but a killed walk still loses the sequence structure (which
step it reached, the ``R(Π_k)`` intermediates the Lemma 3.9 lifting
needs).  This module persists the walk itself:

* after every completed step, :class:`SequenceCheckpoint` writes one
  JSON snapshot per sequence under ``REPRO_CHECKPOINT_DIR`` (or an
  explicit directory), atomically via ``os.replace``;
* the snapshot is versioned (:data:`SCHEMA_VERSION`), whole-file
  checksummed, and every stored problem carries its canonical hash, so
  truncation, bit-rot, and schema drift are all *detected* — a bad
  snapshot degrades to recomputation, never to a wrong resume;
* problems are stored spelling-independently with
  :func:`repro.roundelim.canonical.encode_result` relative to the base
  problem, so a resumed walk rebuilds **bit-identical** objects (same
  labels, same constraints, same names) and recomputes nothing for
  completed steps.

The snapshot key includes the base problem's canonical hash *and* the
sequence options (hygiene flags, ``max_universe``, ``universe_mode``),
so walks with different semantics never share a file.
"""

from __future__ import annotations

import json
import logging
import os
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import CheckpointError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.roundelim.canonical import (
    UnencodableLabelError,
    canonical_hash,
    decode_result,
    encode_result,
)
from repro.utils import env, faults

logger = logging.getLogger(__name__)

SCHEMA_VERSION = 1
ENV_CHECKPOINT_DIR = "REPRO_CHECKPOINT_DIR"


def default_checkpoint_dir() -> Optional[Path]:
    """``$REPRO_CHECKPOINT_DIR`` as a path, or ``None`` when unset."""
    raw = env.get_str(ENV_CHECKPOINT_DIR)
    return Path(raw) if raw else None


def _checksum(body: dict) -> str:
    return sha256(
        json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    ).hexdigest()


class SequenceCheckpoint:
    """One sequence's snapshot file under a checkpoint directory.

    Parameters
    ----------
    base:
        The sequence's ``Π_0`` (identifies the snapshot, together with
        the options).
    options:
        The :class:`ProblemSequence` options that shape the walk.
    directory:
        Where snapshots live; defaults to ``REPRO_CHECKPOINT_DIR``.
    """

    def __init__(
        self,
        base: NodeEdgeCheckableLCL,
        options: Dict[str, Any],
        directory: Optional[os.PathLike] = None,
    ):
        directory = Path(directory) if directory else default_checkpoint_dir()
        if directory is None:
            raise CheckpointError(
                "no checkpoint directory: pass one or set "
                f"${ENV_CHECKPOINT_DIR}"
            )
        self.directory = directory
        self.directory.mkdir(parents=True, exist_ok=True)
        self.base = base
        self.base_hash = canonical_hash(base)
        self.options = {key: options[key] for key in sorted(options)}
        digest = sha256(
            json.dumps(
                {"base": self.base_hash, "options": self.options}, sort_keys=True
            ).encode("utf-8")
        ).hexdigest()
        self.path = self.directory / f"seq-{digest[:40]}.json"

    # -- writing -------------------------------------------------------------
    def save(
        self,
        problems: List[NodeEdgeCheckableLCL],
        intermediates: Dict[int, NodeEdgeCheckableLCL],
    ) -> bool:
        """Persist the walk state (``problems[0]`` is the base, skipped).

        Atomic (tmp file + ``os.replace``), whole-file checksummed.
        Returns ``False`` — with a warning — when some label cannot be
        serialized; checkpointing is best-effort and never fails a walk.
        """
        try:
            body = {
                "schema": SCHEMA_VERSION,
                "base_hash": self.base_hash,
                "options": self.options,
                "problems": [
                    {
                        "name": problem.name,
                        "hash": canonical_hash(problem),
                        "payload": encode_result(self.base, problem),
                    }
                    for problem in problems[1:]
                ],
                "intermediates": {
                    str(step): {
                        "name": problem.name,
                        "hash": canonical_hash(problem),
                        "payload": encode_result(self.base, problem),
                    }
                    for step, problem in sorted(intermediates.items())
                },
            }
        except UnencodableLabelError as error:
            logger.warning("checkpoint skipped (unencodable label): %s", error)
            return False
        entry = {"body": body, "checksum": _checksum(body)}
        text = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        text = faults.corrupt_text("checkpoint_truncate", text)
        try:
            tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError as error:
            logger.warning("checkpoint write failed: %s", error)
            try:
                tmp.unlink()
            except (OSError, UnboundLocalError):
                pass
            return False
        logger.info(
            "checkpoint saved: %d step(s), %d intermediate(s) -> %s",
            len(problems) - 1,
            len(intermediates),
            self.path,
        )
        return True

    # -- reading -------------------------------------------------------------
    def load(
        self,
    ) -> Tuple[List[NodeEdgeCheckableLCL], Dict[int, NodeEdgeCheckableLCL]]:
        """Restore the verified prefix of the walk.

        Returns ``(problems, intermediates)`` with ``problems[0]`` being
        the base problem.  Any corruption — unreadable JSON, checksum or
        schema mismatch, a decoded problem whose canonical hash differs
        from the recorded one — truncates the restored prefix at the
        first bad entry (whole-file damage restores nothing).  Never
        raises for damage; resuming from a damaged snapshot is simply a
        colder start.
        """
        problems: List[NodeEdgeCheckableLCL] = [self.base]
        intermediates: Dict[int, NodeEdgeCheckableLCL] = {}
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return problems, intermediates
        try:
            entry = json.loads(raw)
            body = entry["body"]
            if entry.get("checksum") != _checksum(body):
                raise ValueError("checkpoint checksum mismatch")
            if body.get("schema") != SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported checkpoint schema {body.get('schema')!r}"
                )
            if body.get("base_hash") != self.base_hash:
                raise ValueError("checkpoint is for a different base problem")
            if body.get("options") != self.options:
                raise ValueError("checkpoint is for different sequence options")
        except (ValueError, KeyError, TypeError) as error:
            logger.warning(
                "discarding corrupt checkpoint %s (%s); starting fresh",
                self.path.name,
                error,
            )
            self._quarantine()
            return problems, intermediates

        for step, stored in enumerate(body.get("problems", []), start=1):
            problem = self._decode_verified(stored, f"step {step}")
            if problem is None:
                break
            problems.append(problem)
        restored_steps = len(problems) - 1
        for key, stored in sorted(body.get("intermediates", {}).items()):
            try:
                step = int(key)
            except ValueError:
                continue
            # intermediate(k) = R(Π_k) is only meaningful for restored Π_k.
            if not 0 <= step <= restored_steps:
                continue
            problem = self._decode_verified(stored, f"intermediate {step}")
            if problem is not None:
                intermediates[step] = problem
        logger.info(
            "checkpoint restored: %d step(s), %d intermediate(s) from %s",
            restored_steps,
            len(intermediates),
            self.path,
        )
        return problems, intermediates

    def _decode_verified(
        self, stored: Any, what: str
    ) -> Optional[NodeEdgeCheckableLCL]:
        try:
            problem = decode_result(
                self.base, stored["payload"], name=str(stored.get("name", "resumed"))
            )
            if canonical_hash(problem) != stored["hash"]:
                raise ValueError("canonical hash mismatch")
        except Exception as error:
            logger.warning(
                "checkpoint %s: %s is corrupt (%s); truncating restore here",
                self.path.name,
                what,
                error,
            )
            return None
        return problem

    def _quarantine(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass

    def delete(self) -> None:
        """Remove the snapshot file (e.g. after a completed run)."""
        self._quarantine()
