"""The round elimination operators R (Def. 3.1) and R̄ (Def. 3.2).

Both operators send a node-edge-checkable problem ``Π`` to a problem whose
output alphabet is the power set of ``Σ_out^Π``; they differ only in which
side gets the universal quantifier:

* ``R(Π)``  — an edge configuration ``{B₁, B₂}`` is allowed iff **all**
  selections ``(b₁, b₂) ∈ B₁ × B₂`` are in ``E_Π``; a node configuration
  ``{A₁, …, A_i}`` is allowed iff **some** selection is in ``N_Π^i``.
* ``R̄(Π)`` — dually: **all** selections at nodes, **some** at edges.

``g`` maps each input label to the power set of its old allowed set in
both cases, and input alphabets never change.

The composition ``f = R̄ ∘ R`` is the one-round-speedup step of §3.1.

Label hygiene
-------------
Iterating ``f`` squares the alphabet twice per step, so this module also
provides three *solvability-preserving* reductions:

* :func:`restrict_to_usable` — drop labels that appear in no node
  configuration, no edge configuration, or no ``g`` image (such labels can
  never occur in any correct solution on graphs with minimum degree 1);
* :func:`merge_equivalent_labels` — identify labels with identical roles
  in every constraint (solutions map onto representatives);
* :func:`remove_dominated_labels` — drop label ``x`` when some ``y`` is
  allowed everywhere ``x`` is (the round-eliminator's "non-maximal label"
  pruning).  The paper deliberately does **not** apply this inside its
  proof (see the remark after Def. 3.1); it is safe for the executable
  pipeline because it preserves solvability in both directions, and it is
  what keeps the iterated alphabets tractable.

Each reduction returns a problem whose solutions are solutions of the
original (soundness for the Lemma 3.9 lifting) and onto which solutions of
the original project (completeness for the semidecision procedure).

Memoization and parallelism
---------------------------
``R``, ``R̄``, and ``simplify`` are pure, deterministic functions of their
input problem and options, so this module wraps each in the canonical
operator cache (:mod:`repro.utils.cache` keyed by
:func:`repro.roundelim.canonical.canonical_hash`): a problem met twice —
even under different output label spellings, even in a different process
when the disk layer is on — is computed once.  Pass ``use_cache=False``
(or set ``REPRO_CACHE=0``) to force recomputation.

The quantifier loops of the power-set construction (the exponential part)
additionally chunk across a ``concurrent.futures`` process pool when the
work is large enough: ``REPRO_WORKERS`` sets the worker count (``1``
forces serial; unset uses the CPU count, capped), and
``REPRO_PARALLEL_THRESHOLD`` the minimal number of candidate
configurations before a pool is spun up — below it, or when a pool
cannot be created, the loops run serially with identical semantics
(including the early exits inside each selection check).

Compiled backend
----------------
When the output universe fits one 64-bit word, the quantifier loops and
the domination/equivalence hygiene dispatch to the packed-bitmask
kernels of :mod:`repro.roundelim.bitset` (numpy ``uint64`` folds over
pair/triple tables) instead of the pure-Python paths.  The dispatch is
representation-blind: masks follow the same canonical label order the
oracle sorts by, results are decoded back into the problem's own
alphabet, and budget charges fire identically — so hashes, cache keys,
and certificates do not depend on which backend answered
(``tests/test_bitset_differential.py`` enforces this bit-for-bit).
``REPRO_BITSET=0`` or :func:`configure_bitset` forces the oracle;
out-of-range inputs (wide alphabets, degree ≥ 4 boxes) fall back
automatically and are counted as ``bitset_fallbacks`` in the stats.

Robustness
----------
The pool execution is *hardened* (see :func:`_run_chunks`): chunks have
a per-chunk timeout (``REPRO_CHUNK_TIMEOUT``), failed chunks are retried
with exponential backoff (``REPRO_CHUNK_RETRIES`` rounds), dead workers
and broken pools are detected and the pool rebuilt, and chunks that
still fail are re-executed serially in-process — so a worker crash can
delay a result but never change it or lose it.  Every degradation is
loud: logged through :mod:`logging` and counted in the per-operator
stats (``pool_fallbacks``, ``chunk_retries``, ``chunk_timeouts``,
``chunk_failures``, ``serial_rescues``).

The quantifier loops also poll the ambient cooperative
:class:`repro.utils.budget.Budget` (alphabet, configuration-count, and
wall-clock/RSS limits), so an active budget turns a hopeless operator
application into a structured
:class:`~repro.exceptions.BudgetExceededError` instead of a hang, and
the :mod:`repro.utils.faults` harness can inject deterministic worker
crashes/exits and slow chunks for chaos testing.
"""

from __future__ import annotations

import itertools
import logging
import math
import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.exceptions import ProblemDefinitionError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.roundelim.canonical import (
    UnencodableLabelError,
    canonical_hash,
    decode_result,
    encode_result,
)
from repro.utils import budget as budget_scope
from repro.utils import cache as operator_cache
from repro.utils import env, faults
from repro.utils.multiset import Multiset, label_sort_key

logger = logging.getLogger(__name__)

#: Per-universe memo for :func:`_nonempty_subsets` (the full power set is a
#: pure function of the label set, but used to be rebuilt on every call).
_NONEMPTY_SUBSETS_CACHE: Dict[FrozenSet[Any], List[FrozenSet[Any]]] = {}
_NONEMPTY_SUBSETS_CACHE_MAX = 32
#: Observable counters for the memoization regression test.
_nonempty_subsets_stats: Dict[str, int] = {"calls": 0, "builds": 0}


def _nonempty_subsets(labels: Iterable[Any]) -> List[FrozenSet[Any]]:
    key = frozenset(labels)
    _nonempty_subsets_stats["calls"] += 1
    cached = _NONEMPTY_SUBSETS_CACHE.get(key)
    if cached is None:
        _nonempty_subsets_stats["builds"] += 1
        ordered = sorted(key, key=label_sort_key)
        cached = []
        for size in range(1, len(ordered) + 1):
            for combo in itertools.combinations(ordered, size):
                cached.append(frozenset(combo))
        if len(_NONEMPTY_SUBSETS_CACHE) >= _NONEMPTY_SUBSETS_CACHE_MAX:
            _NONEMPTY_SUBSETS_CACHE.clear()
        _NONEMPTY_SUBSETS_CACHE[key] = cached
    # Callers may hold the list across engine reconfigurations; hand out a
    # fresh copy so the memo entry itself can never be mutated.
    return list(cached)


def _some_selection_in(
    sets: Tuple[FrozenSet[Any], ...], allowed: FrozenSet[Multiset]
) -> bool:
    """Does some choice of one element per set form an allowed multiset?

    Backtracking with prefix pruning against the sub-multiset closure of
    ``allowed`` would be possible, but the alphabets after hygiene are
    small enough that plain recursion with an early sort (smallest sets
    first) suffices.
    """
    order = sorted(sets, key=len)

    def recurse(index: int, chosen: List[Any]) -> bool:
        if index == len(order):
            return Multiset(chosen) in allowed
        for candidate in order[index]:
            chosen.append(candidate)
            if recurse(index + 1, chosen):
                return True
            chosen.pop()
        return False

    return recurse(0, [])


def _all_selections_in(
    sets: Tuple[FrozenSet[Any], ...], allowed: FrozenSet[Multiset]
) -> bool:
    """Is *every* choice of one element per set an allowed multiset?"""
    for chosen in itertools.product(*sets):
        if Multiset(chosen) not in allowed:
            return False
    return True


# ------------------------------------------------------------ bitset backend
_ENV_BITSET = "REPRO_BITSET"

#: Lazily resolved :mod:`repro.roundelim.bitset` module; ``False`` when the
#: import failed (numpy-less environment), ``None`` before the first probe.
_bitset_module: Any = None

#: Programmatic override for the ``REPRO_BITSET`` knob (``None`` = env).
_bitset_overrides: Dict[str, Optional[bool]] = {"enabled": None}


def configure_bitset(enabled: Optional[bool] = None) -> None:
    """Override the ``REPRO_BITSET`` knob for this process.

    ``True`` forces the compiled bitset kernels, ``False`` forces the
    pure-Python oracle, ``None`` clears the override (falling back to the
    environment knob, default on).  Unsupported problem shapes always fall
    back to the oracle regardless of this setting.
    """
    _bitset_overrides["enabled"] = enabled


def _bitset_enabled() -> bool:
    override = _bitset_overrides["enabled"]
    if override is not None:
        return bool(override)
    return env.get_bool(_ENV_BITSET)


def _bitset_backend() -> Any:
    """The compiled backend module when enabled and importable, else ``None``."""
    global _bitset_module
    if not _bitset_enabled():
        return None
    if _bitset_module is None:
        try:
            from repro.roundelim import bitset as module
        except ImportError:  # pragma: no cover - numpy-less environments
            module = False
            logger.info("bitset backend unavailable (numpy missing); using oracle")
        _bitset_module = module
    return _bitset_module or None


# ----------------------------------------------------------- parallel kernel
_ENV_WORKERS = "REPRO_WORKERS"
_ENV_THRESHOLD = "REPRO_PARALLEL_THRESHOLD"
_ENV_CHUNK_TIMEOUT = "REPRO_CHUNK_TIMEOUT"
_ENV_CHUNK_RETRIES = "REPRO_CHUNK_RETRIES"
_DEFAULT_THRESHOLD = 20_000
_MAX_DEFAULT_WORKERS = 8
_DEFAULT_CHUNK_TIMEOUT = 300.0
_DEFAULT_CHUNK_RETRIES = 2
#: First-retry backoff in seconds (doubles per attempt).
_BACKOFF_BASE = 0.05

#: Programmatic overrides (take precedence over the environment).
_parallel_overrides: Dict[str, Optional[float]] = {
    "workers": None,
    "threshold": None,
    "chunk_timeout": None,
    "chunk_retries": None,
}


def configure_parallel(
    workers: Optional[int] = None,
    threshold: Optional[int] = None,
    chunk_timeout: Optional[float] = None,
    chunk_retries: Optional[int] = None,
) -> None:
    """Override the pool knobs for this process.

    ``None`` clears an override (falling back to ``REPRO_WORKERS`` /
    ``REPRO_PARALLEL_THRESHOLD`` / ``REPRO_CHUNK_TIMEOUT`` /
    ``REPRO_CHUNK_RETRIES``, then to the defaults).  ``chunk_timeout`` is
    the per-chunk wall-clock limit in seconds before the chunk is
    retried (and the suspect pool recycled); ``chunk_retries`` bounds the
    pool-level retry rounds before failed chunks are re-executed
    serially in-process.
    """
    _parallel_overrides["workers"] = workers
    _parallel_overrides["threshold"] = threshold
    _parallel_overrides["chunk_timeout"] = chunk_timeout
    _parallel_overrides["chunk_retries"] = chunk_retries


def _effective(name: str, knob: str, default, cast, floor=None):
    override = _parallel_overrides[name]
    if override is not None:
        value = cast(override)
        return value if floor is None else max(floor, value)
    raw = env.get_raw(knob)
    if raw:
        try:
            value = cast(raw)
            return value if floor is None else max(floor, value)
        except ValueError:
            pass
    return default


def _effective_workers() -> int:
    default = min(os.cpu_count() or 1, _MAX_DEFAULT_WORKERS)
    return _effective("workers", _ENV_WORKERS, default, int, floor=1)


def _effective_threshold() -> int:
    return _effective("threshold", _ENV_THRESHOLD, _DEFAULT_THRESHOLD, int, floor=1)


def _effective_chunk_timeout() -> float:
    return _effective(
        "chunk_timeout", _ENV_CHUNK_TIMEOUT, _DEFAULT_CHUNK_TIMEOUT, float, floor=0.001
    )


def _effective_chunk_retries() -> int:
    return _effective(
        "chunk_retries", _ENV_CHUNK_RETRIES, _DEFAULT_CHUNK_RETRIES, int, floor=0
    )


# Worker-process state, installed once per pool via the initializer so the
# (potentially large) constraint tables are pickled once, not per chunk.
_worker_state: Dict[str, Any] = {}


def _node_chunk(
    combos: List[Tuple[FrozenSet[Any], ...]],
    allowed: FrozenSet[Multiset],
    node_forall: bool,
) -> List[Tuple[FrozenSet[Any], ...]]:
    """Pure node-constraint filter shared by workers and serial rescue."""
    check = _all_selections_in if node_forall else _some_selection_in
    return [combo for combo in combos if check(combo, allowed)]


def _edge_chunk(
    row_range: Tuple[int, int],
    universe: List[FrozenSet[Any]],
    summaries: Dict[FrozenSet[Any], frozenset],
    node_forall: bool,
) -> List[Tuple[int, int]]:
    """Pure edge-constraint filter shared by workers and serial rescue."""
    pairs: List[Tuple[int, int]] = []
    for i in range(row_range[0], row_range[1]):
        summary = summaries[universe[i]]
        for j in range(i, len(universe)):
            second = universe[j]
            if node_forall:
                allowed = bool(summary & second)
            else:
                allowed = second <= summary
            if allowed:
                pairs.append((i, j))
    return pairs


def _init_node_worker(allowed: FrozenSet[Multiset], node_forall: bool) -> None:
    # Pool-initializer idiom: these writes happen *inside the child*, after
    # the fork/spawn, to set up worker-local state for _node_chunk_worker —
    # the parent's copy is never touched, which is the point.
    _worker_state["allowed"] = allowed  # repro-lint: disable=REP011 -- child-side init
    _worker_state["node_forall"] = node_forall  # repro-lint: disable=REP011 -- child-side init


def _node_chunk_worker(
    combos: List[Tuple[FrozenSet[Any], ...]]
) -> List[Tuple[FrozenSet[Any], ...]]:
    faults.maybe_exit()
    faults.maybe_crash()
    faults.maybe_sleep()
    return _node_chunk(combos, _worker_state["allowed"], _worker_state["node_forall"])


def _init_edge_worker(
    universe: List[FrozenSet[Any]],
    summaries: Dict[FrozenSet[Any], frozenset],
    node_forall: bool,
) -> None:
    # Pool-initializer idiom: child-side worker-local state (see
    # _init_node_worker above).
    _worker_state["universe"] = universe  # repro-lint: disable=REP011 -- child-side init
    _worker_state["summaries"] = summaries  # repro-lint: disable=REP011 -- child-side init
    _worker_state["node_forall"] = node_forall  # repro-lint: disable=REP011 -- child-side init


def _edge_chunk_worker(row_range: Tuple[int, int]) -> List[Tuple[int, int]]:
    faults.maybe_exit()
    faults.maybe_crash()
    faults.maybe_sleep()
    return _edge_chunk(
        row_range,
        _worker_state["universe"],
        _worker_state["summaries"],
        _worker_state["node_forall"],
    )


def _make_pool(workers: int, initializer, initargs) -> ProcessPoolExecutor:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=initializer,
        initargs=initargs,
    )


def _try_make_pool(
    workers: int, initializer, initargs, stat_key: str
) -> Optional[ProcessPoolExecutor]:
    """Create a pool, or loudly account the fallback and return ``None``."""
    try:
        return _make_pool(workers, initializer, initargs)
    except (OSError, RuntimeError) as error:
        operator_cache.record(stat_key, pool_fallbacks=1)
        logger.warning(
            "%s: process pool unavailable (%s); executing serially", stat_key, error
        )
        return None


def _chunked(items: List[Any], chunks: int) -> List[List[Any]]:
    size = max(1, math.ceil(len(items) / max(1, chunks)))
    return [items[i : i + size] for i in range(0, len(items), size)]


def _wait_timeout(chunk_timeout: float) -> float:
    """Per-future wait: the chunk timeout, shortened so an ambient budget
    deadline is noticed promptly rather than after a full chunk wait."""
    budget = budget_scope.active_budget()
    if budget is not None:
        remaining = budget.remaining_time()
        if remaining is not None:
            return min(chunk_timeout, remaining + 0.05)
    return chunk_timeout


def _run_chunks(
    chunks: List[Any],
    worker_fn: Callable[[Any], Any],
    serial_fn: Callable[[Any], Any],
    initializer: Callable,
    initargs: Tuple,
    workers: int,
    stat_key: str,
) -> List[Any]:
    """Execute ``chunks`` on a hardened process pool, preserving order.

    Failure semantics (all loud — logged and counted in the operator
    stats, never silent):

    * pool cannot be created → ``pool_fallbacks`` + full serial run;
    * a chunk raises in a worker → ``chunk_failures``, chunk is retried
      (``chunk_retries`` rounds with exponential backoff);
    * a chunk exceeds the per-chunk timeout → ``chunk_timeouts``; the
      pool is presumed wedged, recycled, and the chunk retried;
    * a dead worker breaks the pool (``BrokenProcessPool``) →
      ``chunk_failures``; the pool is rebuilt and the chunks retried;
    * chunks still failing after all retries → ``serial_rescues`` + exact
      in-process re-execution of only those chunks.

    The result is therefore always the same list the serial engine would
    produce; an ambient :class:`~repro.utils.budget.Budget` deadline is
    still honored between chunk waits.
    """
    results: List[Any] = [None] * len(chunks)
    pending = list(range(len(chunks)))
    chunk_timeout = _effective_chunk_timeout()
    max_retries = _effective_chunk_retries()
    pool = _try_make_pool(workers, initializer, initargs, stat_key)
    had_pool = pool is not None
    attempt = 0
    try:
        while pool is not None and pending:
            futures = {index: pool.submit(worker_fn, chunks[index]) for index in pending}
            failed: List[int] = []
            broken = False
            for index, future in futures.items():
                if broken:
                    # The pool is suspect: harvest already-finished chunks
                    # without waiting, re-run the rest.
                    try:
                        results[index] = future.result(timeout=0)
                    except Exception:
                        failed.append(index)
                    continue
                try:
                    results[index] = future.result(timeout=_wait_timeout(chunk_timeout))
                except FutureTimeoutError:
                    budget_scope.check()  # distinguish budget deadline from chunk hang
                    operator_cache.record(stat_key, chunk_timeouts=1)
                    logger.warning(
                        "%s: chunk %d exceeded %.3fs timeout; recycling pool",
                        stat_key,
                        index,
                        chunk_timeout,
                    )
                    failed.append(index)
                    broken = True
                except BrokenExecutor as error:
                    operator_cache.record(stat_key, chunk_failures=1)
                    logger.warning(
                        "%s: worker pool broke on chunk %d (%s); rebuilding",
                        stat_key,
                        index,
                        error,
                    )
                    failed.append(index)
                    broken = True
                except Exception as error:
                    operator_cache.record(stat_key, chunk_failures=1)
                    logger.warning(
                        "%s: chunk %d failed in worker (%s)", stat_key, index, error
                    )
                    failed.append(index)
                budget_scope.check()
            pending = failed
            if broken:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            if not pending:
                break
            if attempt >= max_retries:
                break
            attempt += 1
            operator_cache.record(stat_key, chunk_retries=len(pending))
            logger.warning(
                "%s: retrying %d chunk(s), attempt %d/%d",
                stat_key,
                len(pending),
                attempt,
                max_retries,
            )
            time.sleep(_BACKOFF_BASE * (2 ** (attempt - 1)))
            if pool is None:
                pool = _try_make_pool(workers, initializer, initargs, stat_key)
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    if pending:
        if had_pool:
            operator_cache.record(stat_key, serial_rescues=len(pending))
            logger.warning(
                "%s: re-executing %d failed chunk(s) serially in-process",
                stat_key,
                len(pending),
            )
        for index in pending:
            results[index] = serial_fn(chunks[index])
    return results


def _power_problem(
    problem: NodeEdgeCheckableLCL,
    node_forall: bool,
    name_prefix: str,
    max_universe: int,
    universe_mode: str,
) -> NodeEdgeCheckableLCL:
    from repro.roundelim.universe import (
        closed_universe,
        edge_partners,
        reduced_universe,
    )

    if universe_mode == "full":
        universe = _nonempty_subsets(problem.sigma_out)
        if len(universe) > max_universe:
            raise ProblemDefinitionError(
                f"power-set alphabet of {problem.name} has {len(universe)} labels "
                f"(> max_universe={max_universe}); use the reduced universe or raise the limit"
            )
    elif universe_mode == "reduced":
        if node_forall:
            universe = reduced_universe(problem, max_universe)
        else:
            universe = closed_universe(problem, max_universe)
    else:
        raise ProblemDefinitionError(f"unknown universe_mode: {universe_mode!r}")

    backend = _bitset_backend()
    if backend is not None:
        try:
            return backend.power_problem(problem, universe, node_forall, name_prefix)
        except backend.BitsetUnsupported as why:
            # Raised before any budget/stats mutation, so the oracle path
            # below starts from a clean slate.
            operator_cache.record(name_prefix, bitset_fallbacks=1)
            logger.debug(
                "%s(%s): bitset backend declined (%s); using oracle",
                name_prefix,
                problem.name,
                why,
            )

    workers = _effective_workers()
    threshold = _effective_threshold()
    configurations_tested = 0
    budget_scope.note_alphabet(len(universe))
    budget_scope.check()

    # --- edge constraint via partner-set algebra --------------------------
    partners = edge_partners(problem)
    summaries: Dict[Any, frozenset] = {}
    for subset in universe:
        partner_sets = [partners[b] for b in subset]
        if node_forall:
            # R̄: exists-at-edges — only the union of partners matters.
            summaries[subset] = frozenset().union(*partner_sets)
        else:
            # R: forall-at-edges — only the intersection matters.
            summaries[subset] = frozenset.intersection(*partner_sets)
    pair_count = len(universe) * (len(universe) + 1) // 2
    configurations_tested += pair_count
    budget_scope.charge(pair_count)
    if workers > 1 and pair_count >= threshold:
        row_ranges = [
            (chunk[0], chunk[-1] + 1)
            for chunk in _chunked(list(range(len(universe))), 4 * workers)
        ]
        chunk_results = _run_chunks(
            row_ranges,
            _edge_chunk_worker,
            lambda row_range: _edge_chunk(row_range, universe, summaries, node_forall),
            _init_edge_worker,
            (universe, summaries, node_forall),
            workers,
            name_prefix,
        )
        edge_configurations = [
            Multiset((universe[i], universe[j]))
            for chunk in chunk_results
            for i, j in chunk
        ]
    else:
        edge_configurations = []
        for i, first in enumerate(universe):
            budget_scope.tick(len(universe) - i)
            for second in universe[i:]:
                if node_forall:
                    allowed = bool(summaries[first] & second)
                else:
                    allowed = second <= summaries[first]
                if allowed:
                    edge_configurations.append(Multiset((first, second)))

    # --- node constraint ---------------------------------------------------
    node_check: Callable = _all_selections_in if node_forall else _some_selection_in
    node_constraints: Dict[int, List[Multiset]] = {}
    for degree, allowed in problem.node_constraints.items():
        configurations: List[Multiset] = []
        if allowed:
            combo_count = math.comb(len(universe) + degree - 1, degree)
            configurations_tested += combo_count
            budget_scope.charge(combo_count)
            if workers > 1 and combo_count >= threshold:
                combos = list(
                    itertools.combinations_with_replacement(universe, degree)
                )
                chunk_results = _run_chunks(
                    _chunked(combos, 4 * workers),
                    _node_chunk_worker,
                    lambda chunk, allowed=allowed: _node_chunk(
                        chunk, allowed, node_forall
                    ),
                    _init_node_worker,
                    (allowed, node_forall),
                    workers,
                    name_prefix,
                )
                configurations = [
                    Multiset(combo) for chunk in chunk_results for combo in chunk
                ]
            else:
                for combo in itertools.combinations_with_replacement(
                    universe, degree
                ):
                    budget_scope.tick()
                    if node_check(combo, allowed):
                        configurations.append(Multiset(combo))
        node_constraints[degree] = configurations
    operator_cache.record(name_prefix, configurations_tested=configurations_tested)

    g = {
        input_label: frozenset(
            subset for subset in universe if subset <= problem.allowed_outputs(input_label)
        )
        for input_label in problem.sigma_in
    }
    return NodeEdgeCheckableLCL(
        sigma_in=problem.sigma_in,
        sigma_out=universe,
        node_constraints=node_constraints,
        edge_constraint=edge_configurations,
        g=g,
        name=f"{name_prefix}({problem.name})",
    )


def _cached_call(
    operator: str,
    problem: NodeEdgeCheckableLCL,
    flags: str,
    compute: Callable[[], NodeEdgeCheckableLCL],
    result_name: str,
    use_cache: bool,
) -> NodeEdgeCheckableLCL:
    """Run ``compute`` through the canonical operator cache.

    Safe by construction: a hit is decoded against the *query* problem's
    canonical order (correct even when the entry was stored for an
    isomorphic relabeling), and any decode failure — e.g. a poisoned
    on-disk entry — invalidates the entry and falls back to computing.
    """
    start = time.perf_counter()
    store = operator_cache.get_cache()
    if not (use_cache and store.enabled):
        result = compute()
        operator_cache.record(
            operator, computes=1, wall_time=time.perf_counter() - start
        )
        return result
    key = (operator, canonical_hash(problem), flags)
    payload = store.get(key, stat_key=operator)
    if payload is not None:
        try:
            result = decode_result(problem, payload, name=result_name)
        except Exception:
            store.invalidate(key)
            operator_cache.record(operator, decode_errors=1)
        else:
            operator_cache.record(
                operator, hits=1, wall_time=time.perf_counter() - start
            )
            return result
    result = compute()
    try:
        store.put(key, encode_result(problem, result))
        operator_cache.record(operator, stores=1)
    except UnencodableLabelError:
        pass  # exotic label types: recompute next time
    operator_cache.record(
        operator, misses=1, computes=1, wall_time=time.perf_counter() - start
    )
    return result


def R(
    problem: NodeEdgeCheckableLCL,
    max_universe: int = 4096,
    universe_mode: str = "reduced",
    use_cache: bool = True,
) -> NodeEdgeCheckableLCL:
    """Definition 3.1: exists-at-nodes, forall-at-edges power problem.

    ``universe_mode="full"`` materializes every non-empty subset of
    ``Σ_out`` — the paper's literal alphabet minus the empty set, which
    can never appear in any correct solution (it belongs to no node
    configuration because it admits no selection).  The default
    ``"reduced"`` restricts to domination-closed labels (see
    :mod:`repro.roundelim.universe`), which is solvability-equivalent and
    what keeps iterated sequences tractable.

    Results are memoized by canonical problem hash (see the module
    docstring); ``use_cache=False`` bypasses both lookup and store.
    """
    return _cached_call(
        "R",
        problem,
        f"max_universe={max_universe};universe_mode={universe_mode}",
        lambda: _power_problem(
            problem,
            node_forall=False,
            name_prefix="R",
            max_universe=max_universe,
            universe_mode=universe_mode,
        ),
        result_name=f"R({problem.name})",
        use_cache=use_cache,
    )


def R_bar(
    problem: NodeEdgeCheckableLCL,
    max_universe: int = 4096,
    universe_mode: str = "reduced",
    use_cache: bool = True,
) -> NodeEdgeCheckableLCL:
    """Definition 3.2: forall-at-nodes, exists-at-edges power problem.

    See :func:`R` for the ``universe_mode`` semantics and caching; the
    reduced universe for ``R̄`` consists of the partner-antichain
    ("reduced") set labels.
    """
    return _cached_call(
        "Rbar",
        problem,
        f"max_universe={max_universe};universe_mode={universe_mode}",
        lambda: _power_problem(
            problem,
            node_forall=True,
            name_prefix="Rbar",
            max_universe=max_universe,
            universe_mode=universe_mode,
        ),
        result_name=f"Rbar({problem.name})",
        use_cache=use_cache,
    )


# --------------------------------------------------------------- label hygiene
def restrict_to_usable(problem: NodeEdgeCheckableLCL) -> NodeEdgeCheckableLCL:
    """Iteratively drop output labels that cannot occur in any solution.

    A label used on a half-edge of a correct solution necessarily appears
    in the node configuration of its node, the edge configuration of its
    edge, and in ``g`` of its input label; labels missing from any of the
    three are dead.  Removal can create new dead labels, so iterate to a
    fixed point.
    """
    current = problem
    while True:
        usable = current.used_output_labels()
        if usable == current.sigma_out:
            return current
        if not usable:
            # Keep one label so the problem object stays well-formed; all
            # of its constraint sets become empty (the problem is
            # unsolvable on any graph with an edge).
            keep = min(current.sigma_out, key=label_sort_key)
            return current.restrict_outputs([keep])
        current = current.restrict_outputs(usable)


def merge_equivalent_labels(problem: NodeEdgeCheckableLCL) -> NodeEdgeCheckableLCL:
    """Collapse pairs of mutually substitutable labels, to a fixed point.

    Two labels are *equivalent* when each may replace the other in every
    configuration (mutual domination, see :func:`_dominates`).  The label
    with the larger canonical sort key is dropped.  Any solution of the
    original maps to one of the merged problem by substituting the
    representative, and solutions of the merged problem are verbatim
    solutions of the original, so solvability (and 0-round solvability) is
    preserved in both directions.
    """
    current = problem
    while True:
        labels = sorted(current.sigma_out, key=label_sort_key)
        dropped = None
        matrix = _try_domination_matrix(current, labels)
        if matrix is not None:
            backend = _bitset_backend()
            dropped = backend.equivalent_drop(matrix, labels)
        else:
            for i, keep in enumerate(labels):
                for other in labels[i + 1 :]:
                    if _dominates(current, keep, other) and _dominates(
                        current, other, keep
                    ):
                        dropped = other
                        break
                if dropped is not None:
                    break
        if dropped is None:
            return current
        current = current.restrict_outputs(
            [label for label in current.sigma_out if label != dropped]
        )


def _try_domination_matrix(problem: NodeEdgeCheckableLCL, labels: List[Any]):
    """All-pairs domination matrix from the bitset backend, or ``None``.

    ``None`` (backend off, unavailable, or shape unsupported) sends the
    caller down the oracle's pairwise ``_dominates`` scan; the matrix path
    reproduces that scan's drop decisions exactly (see
    :func:`repro.roundelim.bitset.domination_matrix`).
    """
    backend = _bitset_backend()
    if backend is None:
        return None
    try:
        return backend.domination_matrix(problem, labels)
    except backend.BitsetUnsupported:
        operator_cache.record("simplify", bitset_fallbacks=1)
        return None


def _dominates(problem: NodeEdgeCheckableLCL, strong: Any, weak: Any) -> bool:
    """May every occurrence of ``weak`` be replaced by ``strong``?"""
    budget_scope.tick()
    for input_label in problem.sigma_in:
        allowed = problem.g[input_label]
        if weak in allowed and strong not in allowed:
            return False
    for configuration in problem.edge_constraint:
        if weak in configuration:
            if configuration.remove_one(weak).add(strong) not in problem.edge_constraint:
                return False
    for degree, configurations in problem.node_constraints.items():
        for configuration in configurations:
            if weak in configuration:
                replaced = configuration.remove_one(weak).add(strong)
                if replaced not in configurations:
                    return False
    return True


def remove_dominated_labels(problem: NodeEdgeCheckableLCL) -> NodeEdgeCheckableLCL:
    """Drop labels that are dominated by another label, to a fixed point.

    If ``strong`` dominates ``weak``, substituting ``strong`` for ``weak``
    turns any solution into another solution, so removing ``weak``
    preserves solvability in both directions.  Mutual domination is broken
    canonically (the smaller sort key survives) so the operation is
    deterministic.

    Note: the paper's proof keeps non-maximal labels (remark after
    Def. 3.1); use this only in the executable pipeline, where both
    directions of solvability are all that matters.
    """
    current = problem
    while True:
        labels = sorted(current.sigma_out, key=label_sort_key)
        dropped = None
        matrix = _try_domination_matrix(current, labels)
        if matrix is not None:
            backend = _bitset_backend()
            dropped = backend.dominated_drop(matrix, labels)
        else:
            for weak in reversed(labels):
                for strong in labels:
                    if strong == weak:
                        continue
                    if _dominates(current, strong, weak):
                        # For mutual domination keep the canonical (smaller)
                        # label.
                        if _dominates(current, weak, strong) and label_sort_key(
                            strong
                        ) > label_sort_key(weak):
                            continue
                        dropped = weak
                        break
                if dropped is not None:
                    break
        if dropped is None:
            return current
        current = current.restrict_outputs(
            [label for label in current.sigma_out if label != dropped]
        )


def _simplify_impl(
    problem: NodeEdgeCheckableLCL, domination: bool
) -> NodeEdgeCheckableLCL:
    current = problem
    while True:
        budget_scope.check()
        reduced = restrict_to_usable(current)
        reduced = merge_equivalent_labels(reduced)
        if domination:
            reduced = remove_dominated_labels(reduced)
        if reduced.sigma_out == current.sigma_out:
            return reduced
        current = reduced


def simplify(
    problem: NodeEdgeCheckableLCL,
    domination: bool = False,
    use_cache: bool = True,
) -> NodeEdgeCheckableLCL:
    """Run the hygiene passes to a joint fixed point.

    ``domination=True`` additionally removes dominated labels (see
    :func:`remove_dominated_labels` for the fidelity caveat).  Results
    are memoized like :func:`R` / :func:`R_bar`; ``use_cache=False``
    bypasses the cache.
    """
    return _cached_call(
        "simplify",
        problem,
        f"domination={domination}",
        lambda: _simplify_impl(problem, domination),
        result_name=problem.name,
        use_cache=use_cache,
    )
