"""The round elimination operators R (Def. 3.1) and R̄ (Def. 3.2).

Both operators send a node-edge-checkable problem ``Π`` to a problem whose
output alphabet is the power set of ``Σ_out^Π``; they differ only in which
side gets the universal quantifier:

* ``R(Π)``  — an edge configuration ``{B₁, B₂}`` is allowed iff **all**
  selections ``(b₁, b₂) ∈ B₁ × B₂`` are in ``E_Π``; a node configuration
  ``{A₁, …, A_i}`` is allowed iff **some** selection is in ``N_Π^i``.
* ``R̄(Π)`` — dually: **all** selections at nodes, **some** at edges.

``g`` maps each input label to the power set of its old allowed set in
both cases, and input alphabets never change.

The composition ``f = R̄ ∘ R`` is the one-round-speedup step of §3.1.

Label hygiene
-------------
Iterating ``f`` squares the alphabet twice per step, so this module also
provides three *solvability-preserving* reductions:

* :func:`restrict_to_usable` — drop labels that appear in no node
  configuration, no edge configuration, or no ``g`` image (such labels can
  never occur in any correct solution on graphs with minimum degree 1);
* :func:`merge_equivalent_labels` — identify labels with identical roles
  in every constraint (solutions map onto representatives);
* :func:`remove_dominated_labels` — drop label ``x`` when some ``y`` is
  allowed everywhere ``x`` is (the round-eliminator's "non-maximal label"
  pruning).  The paper deliberately does **not** apply this inside its
  proof (see the remark after Def. 3.1); it is safe for the executable
  pipeline because it preserves solvability in both directions, and it is
  what keeps the iterated alphabets tractable.

Each reduction returns a problem whose solutions are solutions of the
original (soundness for the Lemma 3.9 lifting) and onto which solutions of
the original project (completeness for the semidecision procedure).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.exceptions import ProblemDefinitionError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.multiset import Multiset, label_sort_key


def _nonempty_subsets(labels: Iterable[Any]) -> List[FrozenSet[Any]]:
    ordered = sorted(set(labels), key=label_sort_key)
    subsets: List[FrozenSet[Any]] = []
    for size in range(1, len(ordered) + 1):
        for combo in itertools.combinations(ordered, size):
            subsets.append(frozenset(combo))
    return subsets


def _some_selection_in(
    sets: Tuple[FrozenSet[Any], ...], allowed: FrozenSet[Multiset]
) -> bool:
    """Does some choice of one element per set form an allowed multiset?

    Backtracking with prefix pruning against the sub-multiset closure of
    ``allowed`` would be possible, but the alphabets after hygiene are
    small enough that plain recursion with an early sort (smallest sets
    first) suffices.
    """
    order = sorted(sets, key=len)

    def recurse(index: int, chosen: List[Any]) -> bool:
        if index == len(order):
            return Multiset(chosen) in allowed
        for candidate in order[index]:
            chosen.append(candidate)
            if recurse(index + 1, chosen):
                return True
            chosen.pop()
        return False

    return recurse(0, [])


def _all_selections_in(
    sets: Tuple[FrozenSet[Any], ...], allowed: FrozenSet[Multiset]
) -> bool:
    """Is *every* choice of one element per set an allowed multiset?"""
    for chosen in itertools.product(*sets):
        if Multiset(chosen) not in allowed:
            return False
    return True


def _power_problem(
    problem: NodeEdgeCheckableLCL,
    node_forall: bool,
    name_prefix: str,
    max_universe: int,
    universe_mode: str,
) -> NodeEdgeCheckableLCL:
    from repro.roundelim.universe import (
        closed_universe,
        edge_partners,
        reduced_universe,
    )

    if universe_mode == "full":
        universe = _nonempty_subsets(problem.sigma_out)
        if len(universe) > max_universe:
            raise ProblemDefinitionError(
                f"power-set alphabet of {problem.name} has {len(universe)} labels "
                f"(> max_universe={max_universe}); use the reduced universe or raise the limit"
            )
    elif universe_mode == "reduced":
        if node_forall:
            universe = reduced_universe(problem, max_universe)
        else:
            universe = closed_universe(problem, max_universe)
    else:
        raise ProblemDefinitionError(f"unknown universe_mode: {universe_mode!r}")

    # --- edge constraint via partner-set algebra --------------------------
    partners = edge_partners(problem)
    summaries: Dict[Any, frozenset] = {}
    for subset in universe:
        partner_sets = [partners[b] for b in subset]
        if node_forall:
            # R̄: exists-at-edges — only the union of partners matters.
            summaries[subset] = frozenset().union(*partner_sets)
        else:
            # R: forall-at-edges — only the intersection matters.
            summaries[subset] = frozenset.intersection(*partner_sets)
    edge_configurations = []
    for i, first in enumerate(universe):
        for second in universe[i:]:
            if node_forall:
                allowed = bool(summaries[first] & second)
            else:
                allowed = second <= summaries[first]
            if allowed:
                edge_configurations.append(Multiset((first, second)))

    # --- node constraint ---------------------------------------------------
    node_check: Callable = _all_selections_in if node_forall else _some_selection_in
    node_constraints: Dict[int, List[Multiset]] = {}
    for degree, allowed in problem.node_constraints.items():
        configurations = []
        if allowed:
            for combo in itertools.combinations_with_replacement(universe, degree):
                if node_check(combo, allowed):
                    configurations.append(Multiset(combo))
        node_constraints[degree] = configurations

    g = {
        input_label: frozenset(
            subset for subset in universe if subset <= problem.allowed_outputs(input_label)
        )
        for input_label in problem.sigma_in
    }
    return NodeEdgeCheckableLCL(
        sigma_in=problem.sigma_in,
        sigma_out=universe,
        node_constraints=node_constraints,
        edge_constraint=edge_configurations,
        g=g,
        name=f"{name_prefix}({problem.name})",
    )


def R(
    problem: NodeEdgeCheckableLCL,
    max_universe: int = 4096,
    universe_mode: str = "reduced",
) -> NodeEdgeCheckableLCL:
    """Definition 3.1: exists-at-nodes, forall-at-edges power problem.

    ``universe_mode="full"`` materializes every non-empty subset of
    ``Σ_out`` — the paper's literal alphabet minus the empty set, which
    can never appear in any correct solution (it belongs to no node
    configuration because it admits no selection).  The default
    ``"reduced"`` restricts to domination-closed labels (see
    :mod:`repro.roundelim.universe`), which is solvability-equivalent and
    what keeps iterated sequences tractable.
    """
    return _power_problem(
        problem,
        node_forall=False,
        name_prefix="R",
        max_universe=max_universe,
        universe_mode=universe_mode,
    )


def R_bar(
    problem: NodeEdgeCheckableLCL,
    max_universe: int = 4096,
    universe_mode: str = "reduced",
) -> NodeEdgeCheckableLCL:
    """Definition 3.2: forall-at-nodes, exists-at-edges power problem.

    See :func:`R` for the ``universe_mode`` semantics; the reduced universe
    for ``R̄`` consists of the partner-antichain ("reduced") set labels.
    """
    return _power_problem(
        problem,
        node_forall=True,
        name_prefix="Rbar",
        max_universe=max_universe,
        universe_mode=universe_mode,
    )


# --------------------------------------------------------------- label hygiene
def restrict_to_usable(problem: NodeEdgeCheckableLCL) -> NodeEdgeCheckableLCL:
    """Iteratively drop output labels that cannot occur in any solution.

    A label used on a half-edge of a correct solution necessarily appears
    in the node configuration of its node, the edge configuration of its
    edge, and in ``g`` of its input label; labels missing from any of the
    three are dead.  Removal can create new dead labels, so iterate to a
    fixed point.
    """
    current = problem
    while True:
        usable = current.used_output_labels()
        if usable == current.sigma_out:
            return current
        if not usable:
            # Keep one label so the problem object stays well-formed; all
            # of its constraint sets become empty (the problem is
            # unsolvable on any graph with an edge).
            keep = min(current.sigma_out, key=label_sort_key)
            return current.restrict_outputs([keep])
        current = current.restrict_outputs(usable)


def merge_equivalent_labels(problem: NodeEdgeCheckableLCL) -> NodeEdgeCheckableLCL:
    """Collapse pairs of mutually substitutable labels, to a fixed point.

    Two labels are *equivalent* when each may replace the other in every
    configuration (mutual domination, see :func:`_dominates`).  The label
    with the larger canonical sort key is dropped.  Any solution of the
    original maps to one of the merged problem by substituting the
    representative, and solutions of the merged problem are verbatim
    solutions of the original, so solvability (and 0-round solvability) is
    preserved in both directions.
    """
    current = problem
    while True:
        labels = sorted(current.sigma_out, key=label_sort_key)
        dropped = None
        for i, keep in enumerate(labels):
            for other in labels[i + 1 :]:
                if _dominates(current, keep, other) and _dominates(current, other, keep):
                    dropped = other
                    break
            if dropped is not None:
                break
        if dropped is None:
            return current
        current = current.restrict_outputs(
            [label for label in current.sigma_out if label != dropped]
        )


def _dominates(problem: NodeEdgeCheckableLCL, strong: Any, weak: Any) -> bool:
    """May every occurrence of ``weak`` be replaced by ``strong``?"""
    for input_label in problem.sigma_in:
        allowed = problem.g[input_label]
        if weak in allowed and strong not in allowed:
            return False
    for configuration in problem.edge_constraint:
        if weak in configuration:
            if configuration.remove_one(weak).add(strong) not in problem.edge_constraint:
                return False
    for degree, configurations in problem.node_constraints.items():
        for configuration in configurations:
            if weak in configuration:
                replaced = configuration.remove_one(weak).add(strong)
                if replaced not in configurations:
                    return False
    return True


def remove_dominated_labels(problem: NodeEdgeCheckableLCL) -> NodeEdgeCheckableLCL:
    """Drop labels that are dominated by another label, to a fixed point.

    If ``strong`` dominates ``weak``, substituting ``strong`` for ``weak``
    turns any solution into another solution, so removing ``weak``
    preserves solvability in both directions.  Mutual domination is broken
    canonically (the smaller sort key survives) so the operation is
    deterministic.

    Note: the paper's proof keeps non-maximal labels (remark after
    Def. 3.1); use this only in the executable pipeline, where both
    directions of solvability are all that matters.
    """
    current = problem
    while True:
        labels = sorted(current.sigma_out, key=label_sort_key)
        dropped = None
        for weak in reversed(labels):
            for strong in labels:
                if strong == weak:
                    continue
                if _dominates(current, strong, weak):
                    # For mutual domination keep the canonical (smaller) label.
                    if _dominates(current, weak, strong) and label_sort_key(
                        strong
                    ) > label_sort_key(weak):
                        continue
                    dropped = weak
                    break
            if dropped is not None:
                break
        if dropped is None:
            return current
        current = current.restrict_outputs(
            [label for label in current.sigma_out if label != dropped]
        )


def simplify(
    problem: NodeEdgeCheckableLCL, domination: bool = False
) -> NodeEdgeCheckableLCL:
    """Run the hygiene passes to a joint fixed point.

    ``domination=True`` additionally removes dominated labels (see
    :func:`remove_dominated_labels` for the fidelity caveat).
    """
    current = problem
    while True:
        reduced = restrict_to_usable(current)
        reduced = merge_equivalent_labels(reduced)
        if domination:
            reduced = remove_dominated_labels(reduced)
        if reduced.sigma_out == current.sigma_out:
            return reduced
        current = reduced
