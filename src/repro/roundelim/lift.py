"""Lemma 3.9, executable: lift an algorithm for ``R̄(R(Π))`` to one for Π.

Given a deterministic ``T``-round algorithm ``A`` for ``R̄(R(Π))``, the
lifted algorithm ``A'`` for ``Π`` runs in ``T + 1`` rounds:

1. node ``v`` simulates ``A`` at itself and at each neighbor (one extra
   round), so that for every incident edge ``e = {v, w}`` it knows the
   ``R̄(R(Π))``-labels ``A((v,e))`` and ``A((w,e))`` — each a *set of sets*
   of Π-labels;
2. **edge step** — for each edge, both endpoints deterministically agree
   on a pair ``L_{(v,e)} ∈ A((v,e))``, ``L_{(w,e)} ∈ A((w,e))`` with
   ``{L_{(v,e)}, L_{(w,e)}} ∈ E_{R(Π)}`` (such a pair exists because the
   edge constraint of ``R̄`` is existentially defined over ``E_{R(Π)}``);
   agreement is reached canonically, tie-broken by the endpoint IDs;
3. **node step** — ``v`` picks ``ℓ_{(v,e)} ∈ L_{(v,e)}`` per incident edge
   so that the multiset is in ``N_Π`` (exists because the ``L``-labeling
   solves ``R(Π)``, whose node constraint is existential over ``N_Π``).

The cross-edge pairs are then automatically in ``E_Π`` (the edge
constraint of ``R(Π)`` is universal over ``E_Π``) and ``g_Π`` holds by the
power-set structure of the ``g``'s, so the result solves ``Π``.

Composing the lift ``k`` times over a :class:`ProblemSequence`, starting
from a 0-round algorithm for ``f^k(Π)``, yields the paper's synthesized
``k``-round deterministic algorithm for ``Π`` — the constructive content
of Theorem 3.10.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import AlgorithmError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.local.model import LocalAlgorithm, NodeContext
from repro.roundelim.sequence import ProblemSequence
from repro.roundelim.zero_round import ZeroRoundAlgorithm
from repro.utils.multiset import Multiset, label_sort_key


class ZeroRoundLocalAlgorithm(LocalAlgorithm):
    """Adapter: a :class:`ZeroRoundAlgorithm` table as a LOCAL algorithm."""

    def __init__(self, zero_round: ZeroRoundAlgorithm):
        self.zero_round = zero_round
        self.name = f"zero-round[{zero_round.problem.name}]"

    def radius(self, n: int) -> int:
        return 0

    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        if ctx.degree == 0:
            return {}
        outputs = self.zero_round.outputs_for(ctx.input_tuple())
        return {port: label for port, label in enumerate(outputs)}


def _choose_edge_pair(
    set_low: frozenset,
    set_high: frozenset,
    edge_constraint,
) -> Optional[Tuple[Any, Any]]:
    """Canonical pair with ``{a, b}`` allowed, ``a`` from the low-ID side.

    Iteration order is fixed by the canonical label order, so both
    endpoints — who both know both IDs and both label sets — compute the
    identical pair.
    """
    for a in sorted(set_low, key=label_sort_key):
        for b in sorted(set_high, key=label_sort_key):
            if Multiset((a, b)) in edge_constraint:
                return (a, b)
    return None


class LiftedAlgorithm(LocalAlgorithm):
    """One application of the Lemma 3.9 lifting."""

    def __init__(
        self,
        inner: LocalAlgorithm,
        base_problem: NodeEdgeCheckableLCL,
        intermediate: NodeEdgeCheckableLCL,
    ):
        self.inner = inner
        self.base_problem = base_problem
        self.intermediate = intermediate
        self.name = f"lift[{inner.name} -> {base_problem.name}]"
        self.bits_per_node = inner.bits_per_node

    def radius(self, n: int) -> int:
        return self.inner.radius(n) + 1

    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        degree = ctx.degree
        if degree == 0:
            return {}
        my_id = ctx.my_id
        if my_id is None:
            raise AlgorithmError(
                f"{self.name} needs identifiers for the symmetric edge step"
            )
        inner_mine = self.inner.run(ctx)

        chosen_sets: List[Any] = []
        for port in range(degree):
            neighbor_ctx = ctx.delegate(port)
            neighbor_id = neighbor_ctx.my_id
            inner_theirs = self.inner.run(neighbor_ctx)
            remote_port = ctx.graph.neighbor_port(ctx.node, port)
            set_mine = inner_mine[port]
            set_theirs = inner_theirs[remote_port]
            if my_id < neighbor_id:
                pair = _choose_edge_pair(
                    set_mine, set_theirs, self.intermediate.edge_constraint
                )
                mine = None if pair is None else pair[0]
            else:
                pair = _choose_edge_pair(
                    set_theirs, set_mine, self.intermediate.edge_constraint
                )
                mine = None if pair is None else pair[1]
            if mine is None:
                raise AlgorithmError(
                    f"{self.name}: inner output violates the edge constraint of "
                    f"{self.intermediate.name} on port {port} of node {ctx.node}"
                )
            chosen_sets.append(mine)

        outputs = self._node_step(chosen_sets, ctx)
        return {port: label for port, label in enumerate(outputs)}

    def _node_step(self, chosen_sets: List[Any], ctx: NodeContext) -> Tuple[Any, ...]:
        """Pick one Π-label per port: multiset in N_Π, g_Π respected."""
        problem = self.base_problem
        allowed = problem.node_constraints.get(len(chosen_sets), frozenset())
        candidates = []
        for port, label_set in enumerate(chosen_sets):
            permitted = problem.allowed_outputs(ctx.input(port))
            candidates.append(
                sorted((x for x in label_set if x in permitted), key=label_sort_key)
            )
        chosen: List[Any] = []

        def recurse(index: int) -> bool:
            if index == len(candidates):
                return Multiset(chosen) in allowed
            for label in candidates[index]:
                chosen.append(label)
                if recurse(index + 1):
                    return True
                chosen.pop()
            return False

        if not recurse(0):
            raise AlgorithmError(
                f"{self.name}: no node-step selection exists at node {ctx.node}; "
                "the inner algorithm's output does not solve the lifted problem"
            )
        return tuple(chosen)


def lift_once(
    inner: LocalAlgorithm,
    base_problem: NodeEdgeCheckableLCL,
    intermediate: NodeEdgeCheckableLCL,
) -> LocalAlgorithm:
    """Lift an algorithm for ``R̄(R(Π))`` to one for ``Π`` (one round more).

    ``intermediate`` must be the *same* ``R(Π)`` instance (including any
    hygiene applied) from which the lifted problem was generated.
    """
    return LiftedAlgorithm(inner, base_problem, intermediate)


def compose_lifts(
    zero_round: ZeroRoundAlgorithm,
    problems: List[NodeEdgeCheckableLCL],
    intermediates: List[NodeEdgeCheckableLCL],
) -> LocalAlgorithm:
    """Compose the lift over explicit problem/intermediate chains.

    ``problems`` is ``[Π_0, …, Π_k]`` (``Π_0`` the original problem,
    ``Π_k`` the 0-round-solvable bottom) and ``intermediates`` is
    ``[R(Π_0), …, R(Π_{k-1})]`` — the exact instances the lifting picks
    edge pairs from.  ``zero_round`` must solve ``Π_k``.  Taking the
    chains as plain lists (rather than a live :class:`ProblemSequence`)
    is what lets a serialized algorithm description be rebuilt from a
    certificate without re-running the operators.
    """
    if len(intermediates) != len(problems) - 1:
        raise AlgorithmError(
            f"chain shape mismatch: {len(problems)} problem(s) need "
            f"{len(problems) - 1} intermediate(s), got {len(intermediates)}"
        )
    if zero_round.problem != problems[-1]:
        raise AlgorithmError(
            "zero-round algorithm does not match the problem at the given depth"
        )
    algorithm: LocalAlgorithm = ZeroRoundLocalAlgorithm(zero_round)
    for index in range(len(problems) - 2, -1, -1):
        algorithm = lift_once(
            algorithm,
            base_problem=problems[index],
            intermediate=intermediates[index],
        )
    return algorithm


def lift_to_local_algorithm(
    zero_round: ZeroRoundAlgorithm,
    sequence: ProblemSequence,
    steps: int,
) -> LocalAlgorithm:
    """Compose the lift ``steps`` times down a problem sequence.

    ``zero_round`` must solve ``sequence.problem(steps)``; the result is a
    deterministic ``steps``-round LOCAL algorithm for ``sequence.base``.
    """
    return compose_lifts(
        zero_round,
        [sequence.problem(index) for index in range(steps + 1)],
        [sequence.intermediate(index) for index in range(steps)],
    )
