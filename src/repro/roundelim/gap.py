"""The gap pipeline: Theorems 3.10 / 3.11 as an executable procedure.

The paper proves that any LCL with complexity ``o(log* n)`` on trees (or
forests) has complexity ``O(1)`` by walking a problem down the round
elimination sequence to a 0-round-solvable problem and lifting the trivial
algorithm back up.  :func:`speedup` runs exactly that walk:

* for ``k = 0, 1, 2, …`` test whether ``f^k(Π)`` admits a deterministic
  0-round algorithm (a complete decision, :mod:`repro.roundelim.zero_round`);
* on success, synthesize the deterministic ``k``-round LOCAL algorithm for
  ``Π`` via the Lemma 3.9 lifting — a runnable, verifiable artifact;
* if instead the sequence reaches a *fixed point* (``f(Π_k)`` isomorphic
  to ``Π_k``) that is not 0-round solvable, report it: iterating further
  can never succeed, which is the classic round-elimination lower-bound
  certificate (e.g. sinkless orientation) placing ``Π`` outside
  ``o(log* n)``;
* otherwise stop at the step budget with status ``"unknown"``.

This is also the semidecision procedure the paper offers toward
Question 1.7 (decidability of constant-time solvability on trees): by
Theorem 3.10, ``Π ∈ O(1)`` **iff** some ``f^k(Π)`` is 0-round solvable,
so the loop halts with ``"constant"`` on every constant-time problem.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import BudgetExceededError, ProblemDefinitionError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.local.model import LocalAlgorithm
from repro.roundelim.canonical import canonically_equal
from repro.roundelim.lift import ZeroRoundLocalAlgorithm, lift_to_local_algorithm
from repro.roundelim.sequence import ProblemSequence
from repro.roundelim.zero_round import ZeroRoundAlgorithm, find_zero_round_algorithm
from repro.utils.budget import Budget, BudgetDiagnostics

logger = logging.getLogger(__name__)


@dataclass
class GapResult:
    """Outcome of the gap pipeline for one problem."""

    problem: NodeEdgeCheckableLCL
    #: ``"constant"`` (algorithm synthesized), ``"fixed-point"`` (provably
    #: not o(log* n) via a non-solvable RE fixed point), or ``"unknown"``.
    status: str
    #: Rounds of the synthesized algorithm (= elimination depth), if any.
    constant_rounds: Optional[int]
    #: The deterministic LOCAL algorithm for the original problem, if any.
    algorithm: Optional[LocalAlgorithm]
    #: The 0-round table at the bottom of the sequence, if any.
    zero_round: Optional[ZeroRoundAlgorithm]
    #: The (hygiene-reduced) alphabet sizes along the explored sequence.
    alphabet_sizes: List[int]
    #: Step at which a fixed point was detected, if any.
    fixed_point_at: Optional[int]
    sequence: ProblemSequence
    #: Free-form diagnostics (e.g. why the walk stopped early).
    note: str = ""
    #: For ``"unknown"``: the walk established that no ``f^j(Π)`` with
    #: ``j < unknown_since_step`` is 0-round solvable, i.e. the verdict is
    #: ``UNKNOWN(>= step k)`` — an *anytime* partial answer, not a bare
    #: give-up.
    unknown_since_step: Optional[int] = None
    #: Machine-readable account of the budget trip, when one ended the walk.
    budget_diagnostics: Optional[BudgetDiagnostics] = None

    def verdict_label(self) -> str:
        """``"constant"`` / ``"fixed-point"`` / ``"UNKNOWN(>= step k)"``."""
        if self.status == "unknown" and self.unknown_since_step is not None:
            return f"UNKNOWN(>= step {self.unknown_since_step})"
        return self.status

    def certify(self, **kwargs):
        """Package this verdict as a checkable, serializable certificate.

        Delegates to :func:`repro.verify.certify_result`; see
        :mod:`repro.verify` for the certificate format and the
        engine-free checker.  Keyword arguments (``trials``,
        ``component_sizes``, ``seed``) tune the recorded transcript for
        ``"constant"`` verdicts.
        """
        from repro.verify.certify import certify_result

        return certify_result(self, **kwargs)

    def summary(self) -> str:
        lines = [f"gap pipeline for {self.problem.name!r}: {self.verdict_label()}"]
        if self.note:
            lines.append(f"  note: {self.note}")
        if self.budget_diagnostics is not None:
            lines.append(f"  budget: {self.budget_diagnostics.as_dict()}")
        if self.constant_rounds is not None:
            lines.append(f"  synthesized deterministic {self.constant_rounds}-round algorithm")
        if self.fixed_point_at is not None:
            lines.append(
                f"  round-elimination fixed point at step {self.fixed_point_at} "
                "(not 0-round solvable => not o(log* n))"
            )
        lines.append(f"  alphabet sizes along f^k: {self.alphabet_sizes}")
        return "\n".join(lines)


def speedup(
    problem: NodeEdgeCheckableLCL,
    max_steps: int = 4,
    use_domination: bool = True,
    max_universe: int = 4096,
    detect_fixed_points: bool = True,
    use_cache: bool = True,
    budget: Optional[Budget] = None,
    checkpoint=None,
    resume: bool = False,
) -> GapResult:
    """Run the Theorem 3.10 pipeline on a node-edge-checkable problem.

    ``max_steps`` bounds the elimination depth (the procedure is a
    semidecision: constant-time problems terminate, Θ(log* n) problems
    never would).  See :class:`GapResult` for the three outcomes.  The
    underlying operators run through the canonical result cache unless
    ``use_cache=False``, so repeated walks over the same problem are
    pure lookups.

    Anytime semantics: pass a :class:`~repro.utils.budget.Budget` (or run
    inside ``with Budget(...):``) and exhaustion mid-walk degrades to a
    structured ``"unknown"`` result with :attr:`GapResult.unknown_since_step`
    and :attr:`GapResult.budget_diagnostics` populated — no hang, no bare
    exception.  ``checkpoint`` / ``resume`` are forwarded to
    :class:`~repro.roundelim.sequence.ProblemSequence` so an interrupted
    walk continues from its last persisted step.
    """
    sequence = ProblemSequence(
        problem,
        use_simplification=True,
        use_domination=use_domination,
        max_universe=max_universe,
        use_cache=use_cache,
        checkpoint=checkpoint,
    )
    if resume:
        restored = sequence.resume()
        if restored:
            logger.info("speedup(%s): resumed %d step(s)", problem.name, restored)
    if budget is not None:
        with budget:
            return _walk(problem, sequence, max_steps, detect_fixed_points)
    return _walk(problem, sequence, max_steps, detect_fixed_points)


def _unknown(
    problem: NodeEdgeCheckableLCL,
    sequence: ProblemSequence,
    alphabet_sizes: List[int],
    examined: int,
    note: str,
    diagnostics: Optional[BudgetDiagnostics] = None,
) -> GapResult:
    return GapResult(
        problem=problem,
        status="unknown",
        constant_rounds=None,
        algorithm=None,
        zero_round=None,
        alphabet_sizes=alphabet_sizes,
        fixed_point_at=None,
        sequence=sequence,
        note=note,
        unknown_since_step=examined,
        budget_diagnostics=diagnostics,
    )


def _walk(
    problem: NodeEdgeCheckableLCL,
    sequence: ProblemSequence,
    max_steps: int,
    detect_fixed_points: bool,
) -> GapResult:
    alphabet_sizes: List[int] = []
    # Steps whose 0-round check completed negatively: the walk has *proved*
    # that a constant-time verdict needs depth >= examined.
    examined = 0
    for step in range(max_steps + 1):
        try:
            current = sequence.problem(step)
        except ProblemDefinitionError as error:
            # The power-set alphabet outgrew the budget.  For Θ(log* n)
            # problems this is the expected way the walk ends: the sequence
            # never becomes 0-round solvable and its alphabets blow up
            # doubly exponentially (remark in §3.2).
            return _unknown(
                problem,
                sequence,
                alphabet_sizes,
                examined,
                f"stopped before step {step}: {error}",
            )
        except BudgetExceededError as error:
            logger.warning("speedup(%s): %s", problem.name, error.diagnostics)
            return _unknown(
                problem,
                sequence,
                alphabet_sizes,
                examined,
                f"budget exceeded before step {step}",
                diagnostics=error.diagnostics,
            )
        alphabet_sizes.append(len(current.sigma_out))
        zero_round = find_zero_round_algorithm(current)
        if zero_round is not None:
            algorithm = lift_to_local_algorithm(zero_round, sequence, step)
            return GapResult(
                problem=problem,
                status="constant",
                constant_rounds=step,
                algorithm=algorithm,
                zero_round=zero_round,
                alphabet_sizes=alphabet_sizes,
                fixed_point_at=None,
                sequence=sequence,
            )
        examined = step + 1
        if detect_fixed_points and step < max_steps:
            try:
                is_fixed = canonically_equal(sequence.problem(step + 1), current)
            except ProblemDefinitionError as error:
                return _unknown(
                    problem,
                    sequence,
                    alphabet_sizes,
                    examined,
                    f"stopped before step {step + 1}: {error}",
                )
            except BudgetExceededError as error:
                logger.warning("speedup(%s): %s", problem.name, error.diagnostics)
                return _unknown(
                    problem,
                    sequence,
                    alphabet_sizes,
                    examined,
                    f"budget exceeded before step {step + 1}",
                    diagnostics=error.diagnostics,
                )
            if is_fixed:
                return GapResult(
                    problem=problem,
                    status="fixed-point",
                    constant_rounds=None,
                    algorithm=None,
                    zero_round=None,
                    alphabet_sizes=alphabet_sizes,
                    fixed_point_at=step,
                    sequence=sequence,
                )
    return _unknown(
        problem,
        sequence,
        alphabet_sizes,
        examined,
        "step budget exhausted without stabilization",
    )


def verify_on_random_forests(
    result: GapResult,
    component_sizes=(7, 5, 3, 1),
    trials: int = 5,
    seed: int = 0,
) -> bool:
    """Run the synthesized algorithm on random forests and check outputs.

    Inputs are drawn uniformly from ``Σ_in``; identifiers are random from
    a polynomial range.  Returns ``True`` iff every trial yields a valid
    solution (and raises via the simulator if the algorithm overdraws its
    declared radius).

    The seeded trial family lives in :mod:`repro.verify.transcript` so
    that certificates record and re-derive exactly the instances this
    function checks; this wrapper keeps the historical engine-side entry
    point.
    """
    from repro.verify.transcript import verify_algorithm_on_random_forests

    if result.algorithm is None:
        raise ValueError("result carries no synthesized algorithm to verify")
    return verify_algorithm_on_random_forests(
        result.problem,
        result.algorithm,
        component_sizes=component_sizes,
        trials=trials,
        seed=seed,
    )
