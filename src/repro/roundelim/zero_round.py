"""Deterministic 0-round algorithms: existence and extraction.

The proof of Theorem 3.10 derives, from a low-failure randomized 0-round
algorithm, a deterministic 0-round algorithm ``A_det``: a function from
*input tuples* (the node's degree plus the input labels on its ports —
all a 0-round node can see besides randomness) to output tuples, such that

1. for every input tuple ``I = (i₁, …, i_k)``, the chosen output tuple
   ``O(I)`` is a node configuration of ``N^k`` with ``O(I)_j ∈ g(i_j)``,
2. for **any** two chosen output labels ``o ∈ O(I)``, ``o' ∈ O(I')``
   (including ``o = o'`` and ``I = I'``), ``{o, o'}`` is an edge
   configuration — because an adversary can place any two input tuples on
   adjacent nodes, meeting through any pair of ports.

Condition 2 says the set of labels ever output must be a *clique with
self-loops* in the edge-compatibility graph; condition 1 says that clique
must *cover* every input tuple.  Both are decidable by finite search, so
this module is a complete decision procedure for deterministic 0-round
solvability of a node-edge-checkable LCL on forests — the base case of the
gap pipeline and, iterated through ``f = R̄∘R``, the paper's semidecision
procedure for Question 1.7.
"""

from __future__ import annotations

import itertools
import logging
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro import sat
from repro.exceptions import ProblemDefinitionError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils import cache as operator_cache
from repro.utils.multiset import Multiset, label_sort_key

logger = logging.getLogger(__name__)

#: Operator name under which the SAT dispatch records its stats.
_STAT_KEY = "zero_round"


class ZeroRoundAlgorithm:
    """A deterministic 0-round algorithm: input tuple -> output tuple.

    The table is stored per *sorted* input tuple; arbitrary orderings are
    served by permuting (outputs follow their input labels, so ``g`` stays
    satisfied and the output multiset is unchanged).
    """

    def __init__(
        self,
        problem: NodeEdgeCheckableLCL,
        clique: FrozenSet[Any],
        table: Dict[Tuple[Any, ...], Tuple[Any, ...]],
    ):
        self.problem = problem
        self.clique = clique
        self._table = dict(table)

    @property
    def table(self) -> Dict[Tuple[Any, ...], Tuple[Any, ...]]:
        """The full rule table, keyed by sorted input tuple (a copy)."""
        return dict(self._table)

    def outputs_for(self, input_tuple: Sequence[Any]) -> Tuple[Any, ...]:
        """Output labels per port for the given ordered input tuple."""
        ordered = tuple(input_tuple)
        ranking = sorted(range(len(ordered)), key=lambda j: label_sort_key(ordered[j]))
        sorted_inputs = tuple(ordered[j] for j in ranking)
        try:
            sorted_outputs = self._table[sorted_inputs]
        except KeyError:
            raise ProblemDefinitionError(
                f"no 0-round rule for input tuple {ordered!r} (degree {len(ordered)})"
            ) from None
        outputs: List[Any] = [None] * len(ordered)
        for position, port in enumerate(ranking):
            outputs[port] = sorted_outputs[position]
        return tuple(outputs)

    def covered_degrees(self) -> Tuple[int, ...]:
        return tuple(sorted({len(key) for key in self._table}))

    def __repr__(self) -> str:
        return (
            f"ZeroRoundAlgorithm(problem={self.problem.name!r}, "
            f"clique={sorted(self.clique, key=label_sort_key)!r})"
        )


def _self_looped_labels(problem: NodeEdgeCheckableLCL) -> List[Any]:
    return [
        label
        for label in sorted(problem.sigma_out, key=label_sort_key)
        if problem.allows_edge(label, label)
    ]


def _maximal_cliques(problem: NodeEdgeCheckableLCL) -> List[FrozenSet[Any]]:
    """Maximal cliques of the edge-compatibility graph on self-looped labels.

    Bron–Kerbosch with pivoting; alphabets after hygiene are small, so no
    further sophistication is warranted.
    """
    vertices = _self_looped_labels(problem)
    adjacency = {
        v: frozenset(u for u in vertices if u != v and problem.allows_edge(u, v))
        for v in vertices
    }
    cliques: List[FrozenSet[Any]] = []

    def expand(r: set, p: set, x: set) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        pivot = max(p | x, key=lambda v: len(adjacency[v] & p))
        for v in sorted(p - adjacency[pivot], key=label_sort_key):
            expand(r | {v}, p & adjacency[v], x & adjacency[v])
            p = p - {v}
            x = x | {v}

    if vertices:
        expand(set(), set(vertices), set())
    return cliques


def _cover_with_clique(
    problem: NodeEdgeCheckableLCL,
    clique: FrozenSet[Any],
    degrees: Sequence[int],
) -> Optional[Dict[Tuple[Any, ...], Tuple[Any, ...]]]:
    """Try to build the A_det table using only labels from ``clique``."""
    inputs_sorted = sorted(problem.sigma_in, key=label_sort_key)
    table: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
    for degree in degrees:
        allowed_configurations = problem.node_constraints.get(degree)
        if not allowed_configurations:
            return None
        for input_tuple in itertools.combinations_with_replacement(inputs_sorted, degree):
            choice = _choose_outputs(problem, clique, input_tuple, allowed_configurations)
            if choice is None:
                return None
            table[input_tuple] = choice
    return table


def _choose_outputs(
    problem: NodeEdgeCheckableLCL,
    clique: FrozenSet[Any],
    input_tuple: Tuple[Any, ...],
    allowed_configurations: FrozenSet[Multiset],
) -> Optional[Tuple[Any, ...]]:
    """Backtracking: one output per port, multiset in N, g respected."""
    candidates = [
        sorted(problem.allowed_outputs(i) & clique, key=label_sort_key)
        for i in input_tuple
    ]
    chosen: List[Any] = []

    def recurse(index: int) -> bool:
        if index == len(candidates):
            return Multiset(chosen) in allowed_configurations
        for label in candidates[index]:
            chosen.append(label)
            if recurse(index + 1):
                return True
            chosen.pop()
        return False

    return tuple(chosen) if recurse(0) else None


def find_zero_round_algorithm(
    problem: NodeEdgeCheckableLCL,
    degrees: Optional[Iterable[int]] = None,
) -> Optional[ZeroRoundAlgorithm]:
    """Find a deterministic 0-round algorithm, or prove none exists.

    ``degrees`` is the set of node degrees the graph class may contain;
    it defaults to all degrees the problem declares (``1 .. Δ``, which is
    the right choice for the classes ``T`` / ``F`` of the paper).  The
    search over maximal cliques is complete: the labels used by any
    0-round algorithm form a self-looped clique (see module docstring) and
    are therefore contained in some maximal clique.

    Dispatch: under ``REPRO_SAT`` (default on) the existence question and
    the per-clique cover tests are answered by the CNF engine of
    :mod:`repro.sat`, with the winning table still *built* (and thereby
    re-validated) by the enumeration code below — so the result object is
    bit-identical to the pure enumeration path, which any
    :class:`~repro.sat.SatError` falls back to automatically (counted as
    ``sat_fallbacks``).
    """
    chosen_degrees = tuple(sorted(degrees)) if degrees is not None else problem.degrees()
    if not chosen_degrees:
        raise ProblemDefinitionError("problem declares no degrees to cover")
    if sat.sat_enabled():
        try:
            return _find_with_sat(problem, chosen_degrees)
        except sat.SatError as error:
            logger.info("SAT path declined %s (%s); enumerating", problem.name, error)
            operator_cache.record(_STAT_KEY, sat_fallbacks=1)
    return _find_by_enumeration(problem, chosen_degrees)


def _find_by_enumeration(
    problem: NodeEdgeCheckableLCL, chosen_degrees: Tuple[int, ...]
) -> Optional[ZeroRoundAlgorithm]:
    """The complete maximal-clique search (the differential oracle)."""
    cliques = _maximal_cliques(problem)
    cliques.sort(key=lambda c: (-len(c), sorted(map(label_sort_key, c))))
    for clique in cliques:
        table = _cover_with_clique(problem, clique, chosen_degrees)
        if table is not None:
            return ZeroRoundAlgorithm(problem, clique, table)
    return None


def _find_with_sat(
    problem: NodeEdgeCheckableLCL, chosen_degrees: Tuple[int, ...]
) -> Optional[ZeroRoundAlgorithm]:
    """SAT-backed search, pinned to the enumeration path's choices.

    One loaded formula, queried incrementally: per maximal clique (in the
    enumeration path's clique order) the assumptions exclude every other
    selector, so the solver answers "does *this* clique cover every
    tuple?".  Inside a clique all selectors are mutually compatible, so
    each query resolves by unit propagation alone — no search — which is
    what makes this robustly faster than a single global solve.  The
    search over maximal cliques stays complete for the same reason the
    enumeration's is: any covering clique extends to a maximal one, and
    covering is monotone in the clique.

    A SAT answer is never trusted: the model is validated by
    :meth:`~repro.sat.ZeroRoundEncoder.decode_clique` and the actual rule
    table is built by :func:`_cover_with_clique` — enumeration code — so
    the result object is byte-identical and a lying model can only cause
    a :class:`~repro.sat.SatDecodeError` fallback, never a wrong result.
    """
    encoder = sat.ZeroRoundEncoder(problem, chosen_degrees)
    with sat.SatSolver(
        encoder.formula, decision_order=encoder.decision_order()
    ) as solver:
        for clique in encoder.maximal_cliques():
            model = solver.solve(encoder.assumptions_excluding(clique))
            if model is None:
                continue
            encoder.decode_clique(model)  # validation only; raises on any lie
            table = _cover_with_clique(problem, clique, chosen_degrees)
            if table is None:
                raise sat.SatDecodeError(
                    f"SAT cover claim for clique "
                    f"{sorted(clique, key=label_sort_key)!r} is not "
                    f"reproducible by enumeration"
                )
            operator_cache.record(_STAT_KEY, sat_steps=1)
            return ZeroRoundAlgorithm(problem, clique, table)
    operator_cache.record(_STAT_KEY, sat_steps=1)
    return None


def decide_zero_round(
    problem: NodeEdgeCheckableLCL,
    degrees: Optional[Iterable[int]] = None,
) -> bool:
    """Decision-only form of :func:`find_zero_round_algorithm`.

    Answers *whether* a deterministic 0-round algorithm exists without
    extracting the rule table — per-clique incremental assumption
    queries, stopping at the first satisfiable one, which is what
    :func:`repro.decidability.fixed_points.find_fixed_point_certificate`
    needs per fixed point.  Falls back to the full enumeration search on
    any :class:`~repro.sat.SatError`.
    """
    chosen_degrees = tuple(sorted(degrees)) if degrees is not None else problem.degrees()
    if not chosen_degrees:
        raise ProblemDefinitionError("problem declares no degrees to cover")
    if sat.sat_enabled():
        try:
            encoder = sat.ZeroRoundEncoder(problem, chosen_degrees)
            with sat.SatSolver(
                encoder.formula, decision_order=encoder.decision_order()
            ) as solver:
                for clique in encoder.maximal_cliques():
                    model = solver.solve(encoder.assumptions_excluding(clique))
                    if model is None:
                        continue
                    encoder.decode_clique(model)
                    operator_cache.record(_STAT_KEY, sat_steps=1)
                    return True
            operator_cache.record(_STAT_KEY, sat_steps=1)
            return False
        except sat.SatError as error:
            logger.info("SAT path declined %s (%s); enumerating", problem.name, error)
            operator_cache.record(_STAT_KEY, sat_fallbacks=1)
    return _find_by_enumeration(problem, chosen_degrees) is not None
