"""Bitset-compiled kernels for the power-set operators and label hygiene.

The quantifier loops of :func:`repro.roundelim.ops._power_problem` test
every candidate configuration with per-element backtracking over Python
objects; profiling shows >90% of a step's wall clock goes into
``label_sort_key`` recursion inside :class:`~repro.utils.multiset.Multiset`
construction (round-elimination labels are deeply nested frozensets).  This
module compiles the same semantics into packed integer bitmasks over numpy
arrays:

* every *base* output label of ``Π`` gets one bit (:class:`BitsetUniverse`,
  the codec), so a set label of ``R(Π)`` / ``R̄(Π)`` is a single ``uint64``;
* the edge constraint becomes one broadcast compare over the partner-mask
  summaries (``∃``: ``summary & mask != 0``; ``∀``: ``mask & ~summary == 0``);
* node constraints of degree ≤ 3 become the analogous folds over
  per-label neighbor tables (degree 2) and pair tables (degree 3);
* label domination (:func:`domination_matrix`) packs configurations into
  base-``n`` integers and answers every ``(strong, weak)`` pair with sorted
  ``np.isin`` membership — exact, no hashing.

Fidelity contract
-----------------
The compiled path is *representation-blind*: it receives the same label
universe the oracle would use, emits configurations as ordinary
:class:`Multiset`/:class:`frozenset` objects over the same labels, and
mirrors the oracle's budget charges (``note_alphabet`` / ``charge``) at the
same points — so results, canonical hashes, cache entries, certificates,
and budget verdicts are bit-identical to the pure-Python oracle.  The
differential harness (``tests/test_bitset_differential.py``) enforces this
across the catalog and fuzzed problems.

Every unsupported shape — more than 64 base labels, node degrees above 3,
oversized universes — raises :exc:`BitsetUnsupported` *before* any budget
or stats mutation, so :mod:`repro.roundelim.ops` can fall back to the
oracle cleanly (counted per-operator as ``bitset_fallbacks``).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils import budget as budget_scope
from repro.utils import cache as operator_cache
from repro.utils.multiset import Multiset, label_sort_key

#: Machine-word width: a base alphabet with more labels cannot be packed.
WORD_BITS = 64
#: Upper bound on the universe size for the pairwise (m x m) kernels.
MAX_PAIR_UNIVERSE = 8192
#: Upper bound on the universe size for the degree-3 (m^3) sweep.
MAX_TRIPLE_UNIVERSE = 1024
#: Node degrees the compiled kernels cover; higher degrees fall back.
MAX_NODE_DEGREE = 3


class BitsetUnsupported(Exception):
    """The problem shape exceeds what the compiled kernels can pack."""


class BitsetUniverse:
    """Codec between label sets and packed machine-word bitmasks.

    Bit assignment is *canonical*: the base alphabet is sorted by
    :func:`label_sort_key`, and bit ``i`` belongs to the ``i``-th label in
    that order — so two structurally-renamed problems assign corresponding
    bits to corresponding labels regardless of construction order, and
    ``decode(encode(S)) == S`` holds for every subset ``S`` of the base
    alphabet (losslessness; property-tested in ``tests/test_bitset_codec.py``).
    """

    __slots__ = ("base", "index", "full_mask")

    def __init__(self, base_labels: Iterable[Any]):
        self.base: Tuple[Any, ...] = tuple(sorted(set(base_labels), key=label_sort_key))
        if len(self.base) > WORD_BITS:
            raise BitsetUnsupported(
                f"base alphabet has {len(self.base)} labels (> {WORD_BITS}-bit word)"
            )
        if not self.base:
            raise BitsetUnsupported("empty base alphabet")
        self.index: Dict[Any, int] = {label: i for i, label in enumerate(self.base)}
        self.full_mask: int = (1 << len(self.base)) - 1

    def __len__(self) -> int:
        return len(self.base)

    def encode(self, labels: Iterable[Any]) -> int:
        """The bitmask of a label set (labels must all be in the base)."""
        mask = 0
        for label in labels:
            mask |= 1 << self.index[label]
        return mask

    def decode(self, mask: int) -> FrozenSet[Any]:
        """The label set of a bitmask (inverse of :meth:`encode`)."""
        if mask & ~self.full_mask:
            raise ValueError(f"mask {mask:#x} has bits outside the {len(self.base)}-label base")
        return frozenset(
            label for i, label in enumerate(self.base) if (mask >> i) & 1
        )

    def encode_array(self, sets: Sequence[Iterable[Any]]) -> np.ndarray:
        """One ``uint64`` mask per set, in the given order."""
        return np.array([self.encode(s) for s in sets], dtype=np.uint64)


def _canonical_ranks(universe: Sequence[Any]) -> List[int]:
    """``rank[i]`` = position of ``universe[i]`` under ``label_sort_key``.

    Computed once per operator application (``m`` key derivations instead
    of one per emitted configuration); the stable sort reproduces exactly
    the tie behavior of ``sorted(..., key=label_sort_key)``.
    """
    order = sorted(range(len(universe)), key=lambda i: label_sort_key(universe[i]))
    ranks = [0] * len(universe)
    for position, i in enumerate(order):
        ranks[i] = position
    return ranks


def _fold_masks(
    masks: np.ndarray, table: np.ndarray, use_or: bool, full_mask: int
) -> np.ndarray:
    """Per-universe-set fold of ``table`` over the set's member bits.

    ``use_or``: ``out[i] = OR  {table[b] : bit b set in masks[i]}``;
    otherwise  ``out[i] = AND {table[b] : bit b set in masks[i]}``
    (initialized to the full mask; universe sets are non-empty).
    """
    if use_or:
        out = np.zeros(masks.shape[0], dtype=np.uint64)
    else:
        out = np.full(masks.shape[0], np.uint64(full_mask))
    for b in range(table.shape[0]):
        member = (masks >> np.uint64(b)) & np.uint64(1) != 0
        if use_or:
            out[member] |= table[b]
        else:
            out[member] &= table[b]
    return out


def _pair_table(
    configurations: Iterable[Multiset], codec: BitsetUniverse
) -> np.ndarray:
    """``table[x] = mask of y with {x, y} allowed`` (symmetric)."""
    table = [0] * len(codec)
    for configuration in configurations:
        a, b = configuration.items
        ia, ib = codec.index[a], codec.index[b]
        table[ia] |= 1 << ib
        table[ib] |= 1 << ia
    return np.array(table, dtype=np.uint64)


def _triple_table(
    configurations: Iterable[Multiset], codec: BitsetUniverse
) -> np.ndarray:
    """``table[x, y] = mask of z with {x, y, z} allowed`` (symmetric)."""
    size = len(codec)
    table = np.zeros((size, size), dtype=np.uint64)
    for configuration in configurations:
        a, b, c = (codec.index[x] for x in configuration.items)
        bit_a, bit_b, bit_c = (
            np.uint64(1 << a),
            np.uint64(1 << b),
            np.uint64(1 << c),
        )
        table[a, b] |= bit_c
        table[b, a] |= bit_c
        table[a, c] |= bit_b
        table[c, a] |= bit_b
        table[b, c] |= bit_a
        table[c, b] |= bit_a
    return table


def _emit_pair(
    universe: Sequence[FrozenSet[Any]], ranks: List[int], i: int, j: int
) -> Multiset:
    if ranks[i] <= ranks[j]:
        return Multiset._from_sorted((universe[i], universe[j]))
    return Multiset._from_sorted((universe[j], universe[i]))


def _emit_triple(
    universe: Sequence[FrozenSet[Any]], ranks: List[int], i: int, j: int, k: int
) -> Multiset:
    ordered = sorted((i, j, k), key=lambda idx: ranks[idx])
    return Multiset._from_sorted(tuple(universe[idx] for idx in ordered))


def _check_supported(
    problem: NodeEdgeCheckableLCL, universe: Sequence[FrozenSet[Any]]
) -> None:
    """Raise :exc:`BitsetUnsupported` for shapes the kernels cannot pack.

    Must stay free of budget/stats side effects: the caller falls back to
    the oracle path, which performs its own accounting from scratch.
    """
    if len(problem.sigma_out) > WORD_BITS:
        raise BitsetUnsupported(
            f"{len(problem.sigma_out)} base labels exceed the {WORD_BITS}-bit word"
        )
    if len(universe) > MAX_PAIR_UNIVERSE:
        raise BitsetUnsupported(
            f"universe of {len(universe)} labels exceeds the pairwise kernel bound"
        )
    for degree in sorted(problem.node_constraints):
        if not problem.node_constraints[degree]:
            continue
        if degree > MAX_NODE_DEGREE:
            raise BitsetUnsupported(f"node degree {degree} exceeds the compiled kernels")
        if degree == 3 and len(universe) > MAX_TRIPLE_UNIVERSE:
            raise BitsetUnsupported(
                f"degree-3 sweep over {len(universe)} labels exceeds the kernel bound"
            )


def power_problem(
    problem: NodeEdgeCheckableLCL,
    universe: Sequence[FrozenSet[Any]],
    node_forall: bool,
    name_prefix: str,
) -> NodeEdgeCheckableLCL:
    """Compiled equivalent of the oracle ``_power_problem`` body.

    Receives the *already computed* label universe (shared with the oracle
    path, so both backends quantify over identical alphabets) and returns
    the same :class:`NodeEdgeCheckableLCL` the oracle would: identical
    configuration sets, identical ``g``, identical name.  Budget charges
    (``note_alphabet``, per-constraint ``charge``) mirror the oracle's
    order exactly, so budget-exceeded verdicts agree between backends.
    """
    from repro.roundelim.universe import edge_partners

    _check_supported(problem, universe)
    codec = BitsetUniverse(problem.sigma_out)
    m = len(universe)
    budget_scope.note_alphabet(m)
    budget_scope.check()
    configurations_tested = 0

    masks = codec.encode_array(universe)
    ranks = _canonical_ranks(universe)

    # --- edge constraint: one broadcast over partner-mask summaries -------
    partners = edge_partners(problem)
    partner_table = np.array(
        # The taint chain here ends in a bitmask OR-fold: encode() maps a
        # frozenset to bits order-insensitively, so the partner dict's
        # iteration order cannot reach the canonical bytes.
        # repro-lint: disable=REP010 -- order-insensitive bitmask fold
        [codec.encode(partners[label]) for label in codec.base], dtype=np.uint64
    )
    # R̄ (exists-at-edges) folds with OR; R (forall-at-edges) with AND —
    # the same summary algebra as the oracle's frozenset union/intersection.
    summaries = _fold_masks(masks, partner_table, use_or=node_forall, full_mask=codec.full_mask)
    pair_count = m * (m + 1) // 2
    configurations_tested += pair_count
    budget_scope.charge(pair_count)
    budget_scope.tick(pair_count)
    if node_forall:
        allowed_pairs = (summaries[:, None] & masks[None, :]) != 0
    else:
        allowed_pairs = (masks[None, :] & ~summaries[:, None]) == 0
    rows, cols = np.nonzero(np.triu(allowed_pairs))
    edge_configurations = [
        _emit_pair(universe, ranks, i, j)
        for i, j in zip(rows.tolist(), cols.tolist())
    ]

    # --- node constraints --------------------------------------------------
    node_constraints: Dict[int, List[Multiset]] = {}
    for degree in problem.node_constraints:
        allowed = problem.node_constraints[degree]
        configurations: List[Multiset] = []
        if allowed:
            combo_count = _combinations_with_replacement_count(m, degree)
            configurations_tested += combo_count
            budget_scope.charge(combo_count)
            budget_scope.tick(combo_count)
            if degree == 1:
                configurations = _node_degree_one(
                    universe, ranks, masks, allowed, codec, node_forall
                )
            elif degree == 2:
                configurations = _node_degree_two(
                    universe, ranks, masks, allowed, codec, node_forall
                )
            else:
                configurations = _node_degree_three(
                    universe, ranks, masks, allowed, codec, node_forall
                )
        node_constraints[degree] = configurations
    operator_cache.record(
        name_prefix, configurations_tested=configurations_tested, bitset_steps=1
    )

    g = {}
    for input_label in sorted(problem.sigma_in, key=label_sort_key):
        image_mask = np.uint64(codec.encode(problem.allowed_outputs(input_label)))
        inside = (masks & ~image_mask) == 0
        g[input_label] = frozenset(
            universe[i] for i in np.nonzero(inside)[0].tolist()
        )
    return NodeEdgeCheckableLCL(
        sigma_in=problem.sigma_in,
        sigma_out=universe,
        node_constraints=node_constraints,
        edge_constraint=edge_configurations,
        g=g,
        name=f"{name_prefix}({problem.name})",
    )


def _combinations_with_replacement_count(m: int, degree: int) -> int:
    import math

    return math.comb(m + degree - 1, degree)


def _node_degree_one(
    universe: Sequence[FrozenSet[Any]],
    ranks: List[int],
    masks: np.ndarray,
    allowed: FrozenSet[Multiset],
    codec: BitsetUniverse,
    node_forall: bool,
) -> List[Multiset]:
    allowed_mask = 0
    for configuration in allowed:
        allowed_mask |= 1 << codec.index[configuration.items[0]]
    allowed_scalar = np.uint64(allowed_mask)
    if node_forall:
        keep = (masks & ~allowed_scalar) == 0
    else:
        keep = (masks & allowed_scalar) != 0
    return [
        Multiset._from_sorted((universe[i],)) for i in np.nonzero(keep)[0].tolist()
    ]


def _node_degree_two(
    universe: Sequence[FrozenSet[Any]],
    ranks: List[int],
    masks: np.ndarray,
    allowed: FrozenSet[Multiset],
    codec: BitsetUniverse,
    node_forall: bool,
) -> List[Multiset]:
    table = _pair_table(allowed, codec)
    # summary[i] folds the neighbor masks of the members of universe[i]:
    # ∃-at-nodes needs the union (some member pairs with some member of the
    # other side), ∀-at-nodes the intersection (every member pairs with
    # every member).  The relation is symmetric, so the upper triangle of
    # the broadcast compare enumerates exactly the oracle's i <= j combos.
    summaries = _fold_masks(masks, table, use_or=not node_forall, full_mask=codec.full_mask)
    if node_forall:
        matrix = (masks[None, :] & ~summaries[:, None]) == 0
    else:
        matrix = (summaries[:, None] & masks[None, :]) != 0
    rows, cols = np.nonzero(np.triu(matrix))
    return [
        _emit_pair(universe, ranks, i, j)
        for i, j in zip(rows.tolist(), cols.tolist())
    ]


def _node_degree_three(
    universe: Sequence[FrozenSet[Any]],
    ranks: List[int],
    masks: np.ndarray,
    allowed: FrozenSet[Multiset],
    codec: BitsetUniverse,
    node_forall: bool,
) -> List[Multiset]:
    table = _triple_table(allowed, codec)
    m = masks.shape[0]
    size = len(codec)
    # middle[x] : per-universe-j fold of table[x, y] over y ∈ universe[j].
    middle = np.empty((size, m), dtype=np.uint64)
    for x in range(size):
        middle[x] = _fold_masks(
            masks, table[x], use_or=not node_forall, full_mask=codec.full_mask
        )
    configurations: List[Multiset] = []
    for i in range(m):
        # row[j] folds middle[x][j] over x ∈ universe[i]; then combo
        # (i, j, k) is allowed iff universe[k]'s mask passes the usual
        # ∃ / ∀ compare against row[j].
        if node_forall:
            row = np.full(m, np.uint64(codec.full_mask))
        else:
            row = np.zeros(m, dtype=np.uint64)
        mask_i = int(masks[i])
        for x in range(size):
            if (mask_i >> x) & 1:
                if node_forall:
                    row &= middle[x]
                else:
                    row |= middle[x]
        if node_forall:
            matrix = (masks[None, :] & ~row[:, None]) == 0
        else:
            matrix = (row[:, None] & masks[None, :]) != 0
        region = np.triu(matrix)
        if i:
            region[:i, :] = False
        js, ks = np.nonzero(region)
        configurations.extend(
            _emit_triple(universe, ranks, i, j, k)
            for j, k in zip(js.tolist(), ks.tolist())
        )
    return configurations


# ------------------------------------------------------------- label hygiene
def domination_matrix(
    problem: NodeEdgeCheckableLCL, labels: Sequence[Any]
) -> np.ndarray:
    """``D[s, w] = True`` iff ``labels[s]`` dominates ``labels[w]``.

    Exact all-pairs equivalent of the oracle's ``_dominates`` scan: for
    every configuration containing ``w``, replacing one occurrence of
    ``w`` by ``s`` must land on an allowed configuration (and ``g`` images
    containing ``w`` must contain ``s``).  Configurations are packed as
    sorted base-``n`` index digits, so membership is an exact integer
    ``np.isin`` — no hashing, no collisions.
    """
    n = len(labels)
    if n == 0:
        return np.zeros((0, 0), dtype=bool)
    index = {label: i for i, label in enumerate(labels)}
    _check_packable(problem, n)
    budget_scope.tick(n * n)
    violations = np.zeros((n, n), dtype=bool)
    membership = np.empty(n, dtype=bool)
    for input_label in sorted(problem.sigma_in, key=label_sort_key):
        image = problem.g[input_label]
        for i in range(n):
            membership[i] = labels[i] in image
        # s cannot replace w where w is allowed but s is not.
        violations |= ~membership[:, None] & membership[None, :]
    _accumulate_violations(problem.edge_constraint, index, n, violations)
    for degree in sorted(problem.node_constraints):
        _accumulate_violations(
            problem.node_constraints[degree], index, n, violations
        )
    return ~violations


def _check_packable(problem: NodeEdgeCheckableLCL, n: int) -> None:
    """Every constraint's configs must pack into a signed 64-bit integer."""
    base = max(n, 2)
    degrees = [2] + [
        degree
        for degree in sorted(problem.node_constraints)
        if problem.node_constraints[degree]
    ]
    for degree in degrees:
        if base**degree >= 2**63:
            raise BitsetUnsupported(
                f"degree-{degree} configurations over {n} labels overflow the packing word"
            )


def _sorted_membership(packed_allowed: np.ndarray, packed: np.ndarray) -> np.ndarray:
    """Exact membership of ``packed`` values in the sorted ``packed_allowed``."""
    if packed_allowed.shape[0] == 0:
        return np.zeros(packed.shape, dtype=bool)
    positions = np.searchsorted(packed_allowed, packed)
    positions[positions == packed_allowed.shape[0]] = packed_allowed.shape[0] - 1
    return packed_allowed[positions] == packed


#: Element budget for one vectorized replacement block (memory guard).
_VIOLATION_BLOCK_ELEMS = 16_000_000


def _accumulate_violations(
    configurations: FrozenSet[Multiset],
    index: Dict[Any, int],
    n: int,
    violations: np.ndarray,
) -> None:
    if not configurations:
        return
    # Accumulation below only ever ORs into `violations`, so the iteration
    # order over the configuration frozenset cannot affect the result.
    indexed = np.array(
        [[index[x] for x in configuration.items] for configuration in configurations],
        dtype=np.int64,
    )
    count, degree = indexed.shape
    base = np.int64(max(n, 2))
    powers = base ** np.arange(degree, dtype=np.int64)
    packed_allowed = np.sort(np.sort(indexed, axis=1) @ powers)
    candidates = np.arange(n, dtype=np.int64)
    # `violations` is indexed [strong, weak]; the transposed view lets
    # ufunc.at scatter one weak-label row per configuration.
    violations_by_weak = violations.T
    chunk = max(1, _VIOLATION_BLOCK_ELEMS // max(1, n * degree))
    for start in range(0, count, chunk):
        rows = indexed[start : start + chunk]
        # One replacement test per occurrence position (replacing one
        # occurrence), exactly like the oracle's
        # `remove_one(weak).add(strong)`; repeated labels just repeat rows.
        for position in range(degree):
            rest = np.delete(rows, position, axis=1)
            block = np.empty((rows.shape[0], n, degree), dtype=np.int64)
            block[:, :, : degree - 1] = rest[:, None, :]
            block[:, :, degree - 1] = candidates[None, :]
            block.sort(axis=2)
            packed = block.reshape(-1, degree) @ powers
            not_allowed = ~_sorted_membership(packed_allowed, packed)
            np.logical_or.at(
                violations_by_weak,
                rows[:, position],
                not_allowed.reshape(rows.shape[0], n),
            )


# ------------------------------------------------------- universe generation
def compiled_box_checker(problem: NodeEdgeCheckableLCL, degree: int):
    """Vectorized, exact ``is_box`` for the maximal-box BFS of ``R̄``.

    Returns a predicate over tuples of label sets that matches the
    oracle's ``all(Multiset(sel) in allowed for sel in product(*sets))``
    — including its budget tick of the full selection count — but packs
    every selection into a base-``n`` integer and answers with one sorted
    membership probe instead of per-selection ``Multiset`` construction.
    """
    allowed = problem.node_constraints.get(degree, frozenset())
    codec = BitsetUniverse(problem.sigma_out)
    n = len(codec)
    if degree == 3:
        # Dominant case (trees): one fancy-indexed slice of the L x L
        # triple table answers all |A1| x |A2| x |A3| selections — a box
        # iff mask(A3) is inside table[x, y] for every x in A1, y in A2.
        table = _triple_table(allowed, codec)

        def is_box(sets: Tuple[FrozenSet[Any], ...]) -> bool:
            first, second, third = sets
            size = len(first) * len(second) * len(third)
            budget_scope.tick(size)
            if size == 0:
                return True
            third_mask = np.uint64(codec.encode(third))
            sub = table[
                np.ix_(
                    [codec.index[x] for x in first],
                    [codec.index[y] for y in second],
                )
            ]
            return bool(((third_mask & ~sub) == 0).all())

        return is_box

    if max(n, 2) ** degree >= 2**63:
        raise BitsetUnsupported(
            f"degree-{degree} selections over {n} labels overflow the packing word"
        )
    base = np.int64(max(n, 2))
    powers = base ** np.arange(degree, dtype=np.int64)
    if allowed:
        indexed = np.array(
            [[codec.index[x] for x in configuration.items] for configuration in allowed],
            dtype=np.int64,
        )
        packed_allowed = np.sort(np.sort(indexed, axis=1) @ powers)
    else:
        packed_allowed = np.zeros(0, dtype=np.int64)

    def is_box(sets: Tuple[FrozenSet[Any], ...]) -> bool:
        size = 1
        for component in sets:
            size *= len(component)
        budget_scope.tick(size)
        if size == 0:
            return True
        if packed_allowed.shape[0] == 0:
            return False
        axes = [
            np.array([codec.index[x] for x in component], dtype=np.int64)
            for component in sets
        ]
        grids = np.meshgrid(*axes, indexing="ij")
        selections = np.stack([grid.reshape(-1) for grid in grids], axis=1)
        selections.sort(axis=1)
        return bool(_sorted_membership(packed_allowed, selections @ powers).all())

    return is_box


def pair_neighbor_sets(problem: NodeEdgeCheckableLCL) -> Dict[Any, FrozenSet[Any]]:
    """``{x: {y : {x, y} allowed at degree 2}}`` via the packed pair table.

    Replaces the oracle's ``n²`` ``Multiset`` membership probes when
    building the degree-2 concept lattice; the resulting sets are
    identical by construction.
    """
    codec = BitsetUniverse(problem.sigma_out)
    table = _pair_table(problem.node_constraints.get(2, frozenset()), codec)
    return {
        label: codec.decode(int(table[codec.index[label]])) for label in codec.base
    }


def equivalent_drop(matrix: np.ndarray, labels: Sequence[Any]) -> Optional[Any]:
    """First label to drop for ``merge_equivalent_labels``, or ``None``.

    Scans keep/other pairs in canonical order exactly like the oracle loop:
    the first mutually-dominating pair (row-major over the strict upper
    triangle) drops the *larger-keyed* label.
    """
    mutual = matrix & matrix.T
    pairs = np.argwhere(np.triu(mutual, k=1))
    if pairs.shape[0] == 0:
        return None
    return labels[int(pairs[0, 1])]


def dominated_drop(matrix: np.ndarray, labels: Sequence[Any]) -> Optional[Any]:
    """First label to drop for ``remove_dominated_labels``, or ``None``.

    Mirrors the oracle scan: weakest-keyed-last labels first, dropped when
    some ``strong`` dominates it — except when domination is mutual and
    ``strong`` has the larger key (then the canonical smaller label wins
    and ``weak`` survives that particular pair).
    """
    n = len(labels)
    positions = np.arange(n)
    for weak in range(n - 1, -1, -1):
        candidates = matrix[:, weak].copy()
        candidates[weak] = False
        # Mutual domination keeps the smaller-keyed label: a strong with a
        # larger key than weak cannot justify dropping weak if weak also
        # dominates it.
        candidates &= ~(matrix[weak, :] & (positions > weak))
        if bool(candidates.any()):
            return labels[weak]
    return None
