"""The quantitative side of Theorem 3.4: failure probabilities and n₀.

Theorem 3.4 turns a ``T``-round algorithm for ``Π`` with local failure
probability ``p`` into a ``(T-1)``-round algorithm for ``R̄(R(Π))`` with
local failure probability at most ``S · p^{1/(3Δ+3)}``, where

    S = (10Δ(|Σ_in| + max(|Σ_out^Π|, |Σ_out^{R(Π)}|)))^{4Δ^{T+1}}.

The proof of Theorem 3.10 then needs an ``n₀`` satisfying conditions
(3.2)–(3.4) so that iterating the step ``T(n₀)`` times keeps the final
0-round algorithm's failure probability below
``1 / |Σ_out^{f^{T}(Π)}|^{2Δ}``.

All of these quantities overflow floats immediately (they involve power
towers), so everything here is computed and reported in *natural-log
space*: a bound ``B`` is represented by ``log B``.  ``log_p`` arguments
are negative for probabilities below 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.exceptions import ProblemDefinitionError
from repro.utils.numbers import tower


@dataclass(frozen=True)
class FailureBoundParameters:
    """Static parameters of one application of Theorem 3.4."""

    delta: int
    sigma_in_size: int
    sigma_out_size: int
    sigma_out_R_size: int
    runtime: int

    def __post_init__(self) -> None:
        if self.delta < 2:
            raise ProblemDefinitionError("delta must be >= 2")
        if min(self.sigma_in_size, self.sigma_out_size, self.sigma_out_R_size) < 1:
            raise ProblemDefinitionError("alphabet sizes must be positive")
        if self.runtime < 0:
            raise ProblemDefinitionError("runtime must be non-negative")


def log_s_value(params: FailureBoundParameters) -> float:
    """``log s`` with ``s = (3|Σ_in|)^{2Δ^{T+1}}`` (Lemmas 3.5/3.6)."""
    return 2 * params.delta ** (params.runtime + 1) * math.log(3 * params.sigma_in_size)


def theorem_3_4_S(params: FailureBoundParameters) -> float:
    """``log S`` for the Theorem 3.4 bound."""
    base = 10 * params.delta * (
        params.sigma_in_size + max(params.sigma_out_size, params.sigma_out_R_size)
    )
    return 4 * params.delta ** (params.runtime + 1) * math.log(base)


def lemma_3_5_bound(params: FailureBoundParameters, log_p: float, log_K: float) -> float:
    """``log(p s / K²)`` — edge failure of A_1/2 (Lemma 3.5)."""
    return log_p + log_s_value(params) - 2 * log_K


def lemma_3_6_bound(params: FailureBoundParameters, log_p: float, log_K: float) -> float:
    """``log(p + |Σ_out|ΔK + psΔ/K)`` — node failure of A_1/2 (Lemma 3.6)."""
    terms = [
        log_p,
        math.log(params.sigma_out_size * params.delta) + log_K,
        log_p + log_s_value(params) + math.log(params.delta) - log_K,
    ]
    return _log_sum(terms)


def lemma_3_7_bound(params: FailureBoundParameters, log_p: float) -> float:
    """``log(2Δ(s + |Σ_out|) p^{1/3})`` — A_1/2 overall (Lemma 3.7)."""
    log_factor = math.log(2 * params.delta) + _log_sum(
        [log_s_value(params), math.log(params.sigma_out_size)]
    )
    return log_factor + log_p / 3


def lemma_3_8_bound(params: FailureBoundParameters, log_p_star: float) -> float:
    """``log(3(s + |Σ_out^{R}|)(p*)^{1/(Δ+1)})`` — A' overall (Lemma 3.8)."""
    log_factor = math.log(3) + _log_sum(
        [log_s_value(params), math.log(params.sigma_out_R_size)]
    )
    return log_factor + log_p_star / (params.delta + 1)


def failure_after_step(params: FailureBoundParameters, log_p: float) -> float:
    """``log(S · p^{1/(3Δ+3)})`` — one full application of Theorem 3.4."""
    return theorem_3_4_S(params) + log_p / (3 * params.delta + 3)


def failure_after_steps(
    params: FailureBoundParameters, log_p0: float, steps: int
) -> List[float]:
    """Trajectory ``log p_0, log p_1, …, log p_steps`` under Theorem 3.4.

    Uses the same (conservative) trick as the proof of Theorem 3.10: the
    per-step ``S`` is capped by the value at the *initial* runtime, which
    dominates all later ones because the runtime only shrinks.
    """
    trajectory = [log_p0]
    current = log_p0
    for _ in range(steps):
        current = failure_after_step(params, current)
        trajectory.append(current)
    return trajectory


@dataclass(frozen=True)
class N0Report:
    """Evaluation of the Theorem 3.10 conditions (3.2)–(3.4) at one n₀."""

    n0: int
    runtime_at_n0: int
    condition_3_2: bool  #: T(n₀) + 2 <= log_Δ n₀
    condition_3_3: bool  #: 2T(n₀) + 5 <= log* n₀
    condition_3_4: bool  #: ((S*)² (log n₀)^{2Δ})^{(3Δ+3)^{T(n₀)}} < n₀

    @property
    def feasible(self) -> bool:
        return self.condition_3_2 and self.condition_3_3 and self.condition_3_4


def n0_conditions(
    n0: int,
    runtime_at_n0: int,
    delta: int,
    sigma_in_size: int,
) -> N0Report:
    """Check conditions (3.2)–(3.4) from the proof of Theorem 3.10.

    ``S*`` uses ``log n₀`` as the alphabet-size stand-in, exactly as in
    the proof (justified there by the power-tower bound (3.5)).
    """
    from repro.utils.numbers import iterated_log

    log_n0 = math.log(n0)
    condition_3_2 = runtime_at_n0 + 2 <= math.log(n0, delta) if delta > 1 else False
    condition_3_3 = 2 * runtime_at_n0 + 5 <= iterated_log(n0)
    # log S* = 4 Δ^{T+1} log(10Δ(|Σ_in| + log n₀))
    log_S_star = (
        4
        * delta ** (runtime_at_n0 + 1)
        * math.log(10 * delta * (sigma_in_size + max(1.0, log_n0)))
    )
    # log of ((S*)² (log n₀)^{2Δ})^{(3Δ+3)^{T}}  <  log n₀ ?
    try:
        exponent = float((3 * delta + 3) ** runtime_at_n0)
    except OverflowError:
        exponent = math.inf
    left = exponent * (2 * log_S_star + 2 * delta * math.log(max(math.e, log_n0)))
    condition_3_4 = left < log_n0
    return N0Report(
        n0=n0,
        runtime_at_n0=runtime_at_n0,
        condition_3_2=condition_3_2,
        condition_3_3=condition_3_3,
        condition_3_4=condition_3_4,
    )


def alphabet_tower_bound(sigma_out_size: int, steps: int) -> float:
    """``log`` of the (3.5)-style bound: tower of height ``2·steps + 3``.

    The proof bounds ``|Σ_out^{f^i(Π)}|`` for ``i <= T`` by a power tower
    of 2s of height ``2T + 3`` topped by ``|Σ_out^Π|``; returned in log
    space (``math.inf`` when even the log overflows).
    """
    value = tower(2 * steps + 2, top=float(sigma_out_size))
    if value == math.inf:
        return math.inf
    return value * math.log(2.0)


def _log_sum(logs: List[float]) -> float:
    """``log(sum(exp(x) for x in logs))`` computed stably."""
    peak = max(logs)
    if peak == -math.inf:
        return -math.inf
    return peak + math.log(sum(math.exp(x - peak) for x in logs))
