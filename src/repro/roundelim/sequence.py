"""The round elimination problem sequence ``Π, f(Π), f²(Π), …``.

§3.1 defines the sequence by iterating ``f = R̄ ∘ R``.  Each application
trades one round of the LOCAL algorithm for a controlled increase in local
failure probability (Theorem 3.4, forward direction) and can be undone at
the cost of one deterministic round (Lemma 3.9, backward direction).

:class:`ProblemSequence` caches both ``Π_k = f^k(Π)`` and the intermediate
``R(Π_k)`` (which the Lemma 3.9 lifting needs for its first choice step),
and optionally applies the solvability-preserving hygiene passes between
iterations to keep the doubly-exponential alphabets tractable — see
:mod:`repro.roundelim.ops` for why this does not affect the pipeline's
soundness or completeness.

Fault tolerance
---------------
A sequence can **checkpoint** its progress: pass ``checkpoint=`` a
directory (or set ``REPRO_CHECKPOINT_DIR``) and every completed ``Π_k``
and ``R(Π_k)`` is atomically persisted through
:mod:`repro.roundelim.checkpoint`.  A later walk over the same problem
and options calls :meth:`ProblemSequence.resume` to restore the verified
prefix — bit-identical to the uninterrupted run, with zero operator
recomputation for completed steps — and continues from there.  The walk
also cooperates with the ambient :class:`repro.utils.budget.Budget`: the
step about to be computed is reported so a budget trip carries
``step``-level diagnostics.
"""

from __future__ import annotations

import logging
import os
from typing import Dict, List, Optional, Union

from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.roundelim.canonical import canonically_equal
from repro.roundelim.checkpoint import SequenceCheckpoint, default_checkpoint_dir
from repro.roundelim.ops import R, R_bar, simplify
from repro.utils import budget as budget_scope

logger = logging.getLogger(__name__)


class ProblemSequence:
    """Lazily computed sequence of round-eliminated problems.

    Parameters
    ----------
    problem:
        The node-edge-checkable problem ``Π = Π_0``.
    use_simplification:
        Apply :func:`repro.roundelim.ops.simplify` after each ``R`` and
        ``R̄`` application.  Strongly recommended (and the default): the
        raw alphabets grow doubly exponentially.
    use_domination:
        Additionally prune dominated labels during simplification (the
        round-eliminator's non-maximal pruning; solvability-preserving,
        but *not* what the paper's proof manipulates — keep off when
        checking literal fixed-point structure, on for the gap pipeline).
    max_universe:
        Safety bound on the power-set alphabet per step.
    use_cache:
        Route each ``R`` / ``R̄`` / ``simplify`` application through the
        canonical operator cache (:mod:`repro.utils.cache`): a warm
        sequence over a previously seen problem performs zero operator
        recomputations.  ``False`` forces fresh kernel runs (the
        per-instance memo in this object still applies).
    checkpoint:
        ``False`` (never persist), a directory / :class:`SequenceCheckpoint`
        (persist there), or ``None`` — the default — which persists iff
        ``REPRO_CHECKPOINT_DIR`` is set.  Snapshots are written after
        every completed step; call :meth:`resume` to restore one.
    """

    def __init__(
        self,
        problem: NodeEdgeCheckableLCL,
        use_simplification: bool = True,
        use_domination: bool = True,
        max_universe: int = 4096,
        universe_mode: str = "reduced",
        use_cache: bool = True,
        checkpoint: Union[None, bool, str, os.PathLike, SequenceCheckpoint] = None,
    ):
        self.base = problem
        self.use_simplification = use_simplification
        self.use_domination = use_domination
        self.max_universe = max_universe
        self.universe_mode = universe_mode
        self.use_cache = use_cache
        self._problems: List[NodeEdgeCheckableLCL] = [problem]
        self._intermediates: Dict[int, NodeEdgeCheckableLCL] = {}
        self._checkpoint = self._resolve_checkpoint(checkpoint)

    def _resolve_checkpoint(
        self, checkpoint: Union[None, bool, str, os.PathLike, SequenceCheckpoint]
    ) -> Optional[SequenceCheckpoint]:
        if checkpoint is False:
            return None
        if isinstance(checkpoint, SequenceCheckpoint):
            return checkpoint
        if checkpoint is None or checkpoint is True:
            directory = default_checkpoint_dir()
            if directory is None:
                return None
        else:
            directory = checkpoint
        return SequenceCheckpoint(self.base, self._options(), directory=directory)

    def _options(self) -> Dict[str, object]:
        """The option fingerprint a checkpoint must match to be resumable."""
        return {
            "use_simplification": self.use_simplification,
            "use_domination": self.use_domination,
            "max_universe": self.max_universe,
            "universe_mode": self.universe_mode,
        }

    @property
    def checkpoint(self) -> Optional[SequenceCheckpoint]:
        """The attached checkpoint store, if checkpointing is enabled."""
        return self._checkpoint

    def resume(self) -> int:
        """Restore the verified prefix from the checkpoint snapshot.

        Returns the number of completed steps restored (0 when there is
        no snapshot, the snapshot is corrupt, or checkpointing is off).
        Restored problems are bit-identical to the ones the original walk
        computed, and :meth:`problem` will not recompute them.
        """
        if self._checkpoint is None:
            return 0
        problems, intermediates = self._checkpoint.load()
        if len(problems) > len(self._problems):
            self._problems = problems
        for step, problem in intermediates.items():
            self._intermediates.setdefault(step, problem)
        restored = len(self._problems) - 1
        if restored:
            logger.info(
                "resumed %s at step %d (zero recomputation for the prefix)",
                self.base.name,
                restored,
            )
        return restored

    def _persist(self) -> None:
        if self._checkpoint is not None:
            self._checkpoint.save(self._problems, self._intermediates)

    def _clean(self, problem: NodeEdgeCheckableLCL) -> NodeEdgeCheckableLCL:
        if not self.use_simplification:
            return problem
        return simplify(
            problem, domination=self.use_domination, use_cache=self.use_cache
        )

    def intermediate(self, k: int) -> NodeEdgeCheckableLCL:
        """``R(Π_k)`` — the half-step problem between ``Π_k`` and ``Π_{k+1}``."""
        if k not in self._intermediates:
            budget_scope.note_step(k)
            self._intermediates[k] = self._clean(
                R(
                    self.problem(k),
                    max_universe=self.max_universe,
                    universe_mode=self.universe_mode,
                    use_cache=self.use_cache,
                )
            )
            self._persist()
        return self._intermediates[k]

    def problem(self, k: int) -> NodeEdgeCheckableLCL:
        """``Π_k = f^k(Π)`` (with hygiene applied if enabled)."""
        while len(self._problems) <= k:
            index = len(self._problems) - 1
            budget_scope.note_step(index)
            half = self.intermediate(index)
            self._problems.append(
                self._clean(
                    R_bar(
                        half,
                        max_universe=self.max_universe,
                        universe_mode=self.universe_mode,
                        use_cache=self.use_cache,
                    )
                )
            )
            self._persist()
        return self._problems[k]

    def completed_steps(self) -> int:
        """How many steps ``Π_1 .. Π_k`` have been fully computed."""
        return len(self._problems) - 1

    def alphabet_sizes(self, upto: int) -> List[int]:
        """|Σ_out| of ``Π_0 .. Π_upto`` — the growth data of §3.2's remark."""
        return [len(self.problem(k).sigma_out) for k in range(upto + 1)]

    def find_fixed_point(self, max_steps: int) -> Optional[int]:
        """Smallest ``k < max_steps`` with ``Π_{k+1}`` isomorphic to ``Π_k``.

        A fixed point of ``f`` that is not 0-round solvable is the classic
        round-elimination lower-bound certificate (e.g. sinkless
        orientation).  Isomorphism is checked up to output renaming
        (via :func:`repro.roundelim.canonical.canonically_equal`, i.e.
        canonical-hash comparison with an exact fallback), so sequences
        that stabilize only up to relabeling are still detected; this is
        only meaningful with hygiene enabled.
        """
        for k in range(max_steps):
            if canonically_equal(self.problem(k + 1), self.problem(k)):
                return k
        return None
