"""The round elimination problem sequence ``Π, f(Π), f²(Π), …``.

§3.1 defines the sequence by iterating ``f = R̄ ∘ R``.  Each application
trades one round of the LOCAL algorithm for a controlled increase in local
failure probability (Theorem 3.4, forward direction) and can be undone at
the cost of one deterministic round (Lemma 3.9, backward direction).

:class:`ProblemSequence` caches both ``Π_k = f^k(Π)`` and the intermediate
``R(Π_k)`` (which the Lemma 3.9 lifting needs for its first choice step),
and optionally applies the solvability-preserving hygiene passes between
iterations to keep the doubly-exponential alphabets tractable — see
:mod:`repro.roundelim.ops` for why this does not affect the pipeline's
soundness or completeness.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.roundelim.canonical import canonically_equal
from repro.roundelim.ops import R, R_bar, simplify


class ProblemSequence:
    """Lazily computed sequence of round-eliminated problems.

    Parameters
    ----------
    problem:
        The node-edge-checkable problem ``Π = Π_0``.
    use_simplification:
        Apply :func:`repro.roundelim.ops.simplify` after each ``R`` and
        ``R̄`` application.  Strongly recommended (and the default): the
        raw alphabets grow doubly exponentially.
    use_domination:
        Additionally prune dominated labels during simplification (the
        round-eliminator's non-maximal pruning; solvability-preserving,
        but *not* what the paper's proof manipulates — keep off when
        checking literal fixed-point structure, on for the gap pipeline).
    max_universe:
        Safety bound on the power-set alphabet per step.
    use_cache:
        Route each ``R`` / ``R̄`` / ``simplify`` application through the
        canonical operator cache (:mod:`repro.utils.cache`): a warm
        sequence over a previously seen problem performs zero operator
        recomputations.  ``False`` forces fresh kernel runs (the
        per-instance memo in this object still applies).
    """

    def __init__(
        self,
        problem: NodeEdgeCheckableLCL,
        use_simplification: bool = True,
        use_domination: bool = True,
        max_universe: int = 4096,
        universe_mode: str = "reduced",
        use_cache: bool = True,
    ):
        self.base = problem
        self.use_simplification = use_simplification
        self.use_domination = use_domination
        self.max_universe = max_universe
        self.universe_mode = universe_mode
        self.use_cache = use_cache
        self._problems: List[NodeEdgeCheckableLCL] = [problem]
        self._intermediates: Dict[int, NodeEdgeCheckableLCL] = {}

    def _clean(self, problem: NodeEdgeCheckableLCL) -> NodeEdgeCheckableLCL:
        if not self.use_simplification:
            return problem
        return simplify(
            problem, domination=self.use_domination, use_cache=self.use_cache
        )

    def intermediate(self, k: int) -> NodeEdgeCheckableLCL:
        """``R(Π_k)`` — the half-step problem between ``Π_k`` and ``Π_{k+1}``."""
        if k not in self._intermediates:
            self._intermediates[k] = self._clean(
                R(
                    self.problem(k),
                    max_universe=self.max_universe,
                    universe_mode=self.universe_mode,
                    use_cache=self.use_cache,
                )
            )
        return self._intermediates[k]

    def problem(self, k: int) -> NodeEdgeCheckableLCL:
        """``Π_k = f^k(Π)`` (with hygiene applied if enabled)."""
        while len(self._problems) <= k:
            index = len(self._problems) - 1
            half = self.intermediate(index)
            self._problems.append(
                self._clean(
                    R_bar(
                        half,
                        max_universe=self.max_universe,
                        universe_mode=self.universe_mode,
                        use_cache=self.use_cache,
                    )
                )
            )
        return self._problems[k]

    def alphabet_sizes(self, upto: int) -> List[int]:
        """|Σ_out| of ``Π_0 .. Π_upto`` — the growth data of §3.2's remark."""
        return [len(self.problem(k).sigma_out) for k in range(upto + 1)]

    def find_fixed_point(self, max_steps: int) -> Optional[int]:
        """Smallest ``k < max_steps`` with ``Π_{k+1}`` isomorphic to ``Π_k``.

        A fixed point of ``f`` that is not 0-round solvable is the classic
        round-elimination lower-bound certificate (e.g. sinkless
        orientation).  Isomorphism is checked up to output renaming
        (via :func:`repro.roundelim.canonical.canonically_equal`, i.e.
        canonical-hash comparison with an exact fallback), so sequences
        that stabilize only up to relabeling are still detected; this is
        only meaningful with hygiene enabled.
        """
        for k in range(max_steps):
            if canonically_equal(self.problem(k + 1), self.problem(k)):
                return k
        return None
