"""Round elimination: R, R̄, problem sequences, 0-round solving, lifting,
failure-probability bounds, and the Theorem 3.10/3.11 gap pipeline.

The operators are memoized through a canonical-hash cache and can chunk
their quantifier loops across worker processes — see
:mod:`repro.roundelim.canonical`, :mod:`repro.utils.cache`, and the
``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` / ``REPRO_WORKERS`` environment
knobs documented in :mod:`repro.roundelim.ops`.  ``stats()`` /
``reset_stats()`` / ``format_stats()`` expose the engine counters.
"""

from repro.roundelim.canonical import (
    canonical_encoding,
    canonical_form,
    canonical_hash,
    canonical_order,
    canonically_equal,
)
from repro.roundelim.ops import (
    R,
    R_bar,
    configure_bitset,
    configure_parallel,
    merge_equivalent_labels,
    remove_dominated_labels,
    restrict_to_usable,
    simplify,
)
from repro.utils.cache import format_stats, reset_stats, stats
from repro.roundelim.checkpoint import SequenceCheckpoint
from repro.roundelim.sequence import ProblemSequence
from repro.roundelim.zero_round import (
    ZeroRoundAlgorithm,
    decide_zero_round,
    find_zero_round_algorithm,
)
from repro.roundelim.lift import lift_once, lift_to_local_algorithm
from repro.roundelim.failure_bounds import (
    FailureBoundParameters,
    failure_after_step,
    failure_after_steps,
    n0_conditions,
    theorem_3_4_S,
)
from repro.roundelim.gap import GapResult, speedup

__all__ = [
    "R",
    "R_bar",
    "canonical_encoding",
    "canonical_form",
    "canonical_hash",
    "canonical_order",
    "canonically_equal",
    "configure_bitset",
    "configure_parallel",
    "format_stats",
    "reset_stats",
    "stats",
    "restrict_to_usable",
    "merge_equivalent_labels",
    "remove_dominated_labels",
    "simplify",
    "ProblemSequence",
    "SequenceCheckpoint",
    "ZeroRoundAlgorithm",
    "decide_zero_round",
    "find_zero_round_algorithm",
    "lift_once",
    "lift_to_local_algorithm",
    "FailureBoundParameters",
    "theorem_3_4_S",
    "failure_after_step",
    "failure_after_steps",
    "n0_conditions",
    "GapResult",
    "speedup",
]
