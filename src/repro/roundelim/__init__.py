"""Round elimination: R, R̄, problem sequences, 0-round solving, lifting,
failure-probability bounds, and the Theorem 3.10/3.11 gap pipeline."""

from repro.roundelim.ops import (
    R,
    R_bar,
    merge_equivalent_labels,
    remove_dominated_labels,
    restrict_to_usable,
    simplify,
)
from repro.roundelim.sequence import ProblemSequence
from repro.roundelim.zero_round import ZeroRoundAlgorithm, find_zero_round_algorithm
from repro.roundelim.lift import lift_once, lift_to_local_algorithm
from repro.roundelim.failure_bounds import (
    FailureBoundParameters,
    failure_after_step,
    failure_after_steps,
    n0_conditions,
    theorem_3_4_S,
)
from repro.roundelim.gap import GapResult, speedup

__all__ = [
    "R",
    "R_bar",
    "restrict_to_usable",
    "merge_equivalent_labels",
    "remove_dominated_labels",
    "simplify",
    "ProblemSequence",
    "ZeroRoundAlgorithm",
    "find_zero_round_algorithm",
    "lift_once",
    "lift_to_local_algorithm",
    "FailureBoundParameters",
    "theorem_3_4_S",
    "failure_after_step",
    "failure_after_steps",
    "n0_conditions",
    "GapResult",
    "speedup",
]
