"""Lease records: which worker owns which cell, and until when.

A lease is the scheduler's unit of failure detection.  When a cell is
dispatched, the worker is granted a lease with a deadline; every
heartbeat from that worker renews its leases.  A worker that dies
(SIGKILL, segfault) or silently stalls stops heartbeating, its lease
expires, and the engine reclaims the cell for re-dispatch — that is
what makes execution *at-least-once* rather than at-most-once.

All timestamps are ``time.monotonic()`` values owned by the engine
(leases never read the clock themselves), so the table is trivially
testable with synthetic times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.exceptions import SchedulerError


@dataclass
class Lease:
    """One worker's temporary ownership of one cell."""

    cell_id: str
    worker_id: int
    granted_at: float
    deadline: float

    def expired(self, now: float) -> bool:
        return now >= self.deadline


class LeaseTable:
    """All live leases, keyed by cell id (a cell has at most one owner).

    The single-owner invariant is load-bearing: granting a cell that is
    already leased means the engine double-dispatched it, which would
    make "duplicate completion" indistinguishable from an engine bug —
    so :meth:`grant` raises :class:`SchedulerError` instead.
    """

    def __init__(self, lease_secs: float):
        if lease_secs <= 0:
            raise SchedulerError(f"lease_secs must be positive, got {lease_secs}")
        self.lease_secs = float(lease_secs)
        self._by_cell: Dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._by_cell)

    def grant(self, cell_id: str, worker_id: int, now: float) -> Lease:
        """Grant ``worker_id`` a fresh lease on ``cell_id``."""
        existing = self._by_cell.get(cell_id)
        if existing is not None:
            raise SchedulerError(
                f"cell {cell_id!r} is already leased to worker "
                f"{existing.worker_id} (double dispatch)"
            )
        lease = Lease(
            cell_id=cell_id,
            worker_id=worker_id,
            granted_at=now,
            deadline=now + self.lease_secs,
        )
        self._by_cell[cell_id] = lease
        return lease

    def renew_worker(self, worker_id: int, now: float) -> int:
        """Heartbeat: push every lease held by ``worker_id`` forward.
        Returns how many leases were renewed."""
        renewed = 0
        for lease in self._by_cell.values():
            if lease.worker_id == worker_id:
                lease.deadline = now + self.lease_secs
                renewed += 1
        return renewed

    def release(self, cell_id: str) -> None:
        """Drop the lease on ``cell_id`` (completion or reclaim)."""
        self._by_cell.pop(cell_id, None)

    def of_worker(self, worker_id: int) -> List[Lease]:
        """Every lease currently held by ``worker_id``."""
        return [
            lease
            for lease in self._by_cell.values()
            if lease.worker_id == worker_id
        ]

    def expired(self, now: float) -> List[Lease]:
        """Every lease whose deadline has passed — stalled or dead
        workers whose cells must be reclaimed."""
        return [lease for lease in self._by_cell.values() if lease.expired(now)]
