"""The scheduler's task queue, sharded by canonical cell id.

Sharding serves determinism, not throughput: a cell's shard is a pure
function of its canonical id (``sha256(cell_id) % nshards``), so the
*relative* dispatch order of cells is stable across runs and across
resume boundaries — a retried or reclaimed cell rejoins the same shard
it came from, behind the cells that were already waiting there.

Retry backoff becomes a ``not_before`` dispatch time rather than a
sleep: a backing-off cell parks in its shard without blocking a worker,
and :meth:`ShardedTaskQueue.pop_ready` simply skips it until its time
arrives.  Durability lives in the journal and shards, not here — after
a crash the queue is reconstructed as "all cells minus journaled ones".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import List, Optional

from repro.supervisor.cells import CellSpec


@dataclass
class Task:
    """One cell's place in line, with its retry history.

    ``attempt`` counts *cell-body attempts that failed* (the same
    counter serial ``supervise_cell`` uses), while ``reclaims`` counts
    worker-level losses — a reclaimed dispatch never ran the cell body
    to a verdict, so it must not consume a retry.
    """

    spec: CellSpec
    attempt: int = 0
    delays: List[float] = field(default_factory=list)
    not_before: float = 0.0
    reclaims: int = 0

    def cell_id(self) -> str:
        return self.spec.cell_id()


def shard_of(cell_id: str, nshards: int) -> int:
    """The canonical shard of a cell — a pure function of its id."""
    digest = sha256(cell_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % max(1, nshards)


class ShardedTaskQueue:
    """FIFO-per-shard queue with round-robin dispatch across shards."""

    def __init__(self, nshards: int):
        self.nshards = max(1, int(nshards))
        self._shards: List[List[Task]] = [[] for _ in range(self.nshards)]
        self._cursor = 0

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def push(self, task: Task, not_before: float = 0.0) -> None:
        """Enqueue ``task`` at the back of its canonical shard, not to
        be dispatched before ``not_before`` (monotonic time)."""
        task.not_before = not_before
        self._shards[shard_of(task.cell_id(), self.nshards)].append(task)

    def pop_ready(self, now: float) -> Optional[Task]:
        """The next dispatchable task, round-robining across shards and
        skipping tasks still inside their backoff window; ``None`` when
        nothing is ready (the queue may still be non-empty)."""
        for offset in range(self.nshards):
            index = (self._cursor + offset) % self.nshards
            shard = self._shards[index]
            for position, task in enumerate(shard):
                if task.not_before <= now:
                    shard.pop(position)
                    self._cursor = (index + 1) % self.nshards
                    return task
        return None

    def next_ready_at(self) -> Optional[float]:
        """The earliest ``not_before`` among queued tasks, or ``None``
        when the queue is empty — lets the engine size its waits."""
        times = [task.not_before for shard in self._shards for task in shard]
        return min(times) if times else None
