"""Lease-based multi-worker campaign scheduler with crash recovery.

This package runs a supervised campaign (:mod:`repro.supervisor`)
across N concurrent worker processes instead of serially, while keeping
the supervisor's headline contract: the final journal and report are
**byte-identical** to an undisturbed serial
:func:`~repro.supervisor.campaign.run_campaign` of the same cells and
seed — even while workers crash, hang, stall their heartbeats, or
double-complete cells.

The moving parts:

* :mod:`repro.scheduler.queue` — a task queue sharded by canonical
  cell id, with not-before times so retry backoff never blocks a
  worker;
* :mod:`repro.scheduler.leases` — lease records with deadlines renewed
  by worker heartbeats; an expired lease means a dead or stalled
  worker, and its cell is reclaimed and re-dispatched;
* :mod:`repro.scheduler.worker` — the worker process: runs one cell
  attempt at a time (reusing the supervisor's isolation machinery),
  journals each completion to its own shard *before* reporting it;
* :mod:`repro.scheduler.engine` — the parent event loop:
  :func:`run_scheduled_campaign`.

Use :func:`run_scheduled_campaign` exactly like ``run_campaign``; the
extra :class:`SchedulerConfig` shapes concurrency only, never results.
"""

from repro.scheduler.engine import (
    SchedulerConfig,
    SchedulerReport,
    SchedulerStats,
    run_scheduled_campaign,
)

__all__ = [
    "SchedulerConfig",
    "SchedulerReport",
    "SchedulerStats",
    "run_scheduled_campaign",
]
