"""The scheduler engine: dispatch, leases, recovery, merge, finalize.

:func:`run_scheduled_campaign` is the multi-worker counterpart of
:func:`repro.supervisor.campaign.run_campaign`, with the same contract
(every cell reaches a terminal result; failures are quarantined, never
raised) plus crash recovery:

* cells are dispatched from a queue sharded by canonical cell id, one
  in-flight cell per worker, each under a heartbeat-renewed **lease**;
* a worker that dies or stops heartbeating forfeits its lease and the
  cell is **reclaimed** and re-dispatched (at-least-once execution) —
  a reclaim is a worker-level loss, so it never consumes one of the
  cell's retries;
* failed attempts are retried with the same deterministic seeded
  backoff serial supervision applies
  (:func:`repro.supervisor.campaign.retry_delay`), realized as
  ``not_before`` dispatch times so a backing-off cell never blocks a
  worker;
* **duplicate completions** (an expected consequence of at-least-once
  execution, and an injectable chaos kind) are deduplicated by cell
  id; the discarded copy is asserted bit-identical to the kept one —
  a divergence means a nondeterministic cell runner and raises
  :class:`~repro.exceptions.SchedulerError`;
* workers journal completions to per-worker **shards** before
  reporting them; on resume the shards are merged into the canonical
  journal, and when the campaign finishes the journal is atomically
  rewritten into canonical campaign order — byte-identical to the
  journal of an undisturbed serial run;
* ``SIGTERM`` / ``KeyboardInterrupt`` trigger a graceful **drain**:
  no new dispatches, a bounded wait for in-flight cells, shard merge,
  then the interrupt propagates; a resumed run loses nothing that was
  completed.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, cast

from repro.exceptions import SchedulerError, SchedulerHalted, SupervisorError
from repro.scheduler import worker as worker_module
from repro.scheduler.leases import LeaseTable
from repro.scheduler.queue import ShardedTaskQueue, Task
from repro.supervisor.campaign import (
    CampaignConfig,
    CampaignReport,
    retry_delay,
    verify_resume_key,
)
from repro.supervisor.cells import (
    STATUS_QUARANTINED,
    CellResult,
    CellSpec,
)
from repro.supervisor.journal import CampaignJournal, load_cell_records
from repro.utils import env, faults

logger = logging.getLogger(__name__)

ENV_SCHED_WORKERS = "REPRO_SCHED_WORKERS"
ENV_SCHED_LEASE_SECS = "REPRO_SCHED_LEASE_SECS"

#: Event-loop tick: the upper bound on how stale the engine's view of
#: worker deaths and lease expiries can be.
_TICK_SECONDS = 0.02

#: Grace period for a terminated worker before escalating to SIGKILL.
_TERMINATE_GRACE_SECONDS = 1.0


@dataclass(frozen=True)
class SchedulerConfig:
    """Concurrency parameters for one scheduled campaign.

    Shapes *scheduling only* — worker count, lease deadlines, drain
    budget — never cell values or journal contents, so the same
    campaign run under any scheduler configuration (including serial
    ``run_campaign``) produces the same results.
    """

    workers: Optional[int] = None
    lease_secs: Optional[float] = None
    heartbeat_secs: Optional[float] = None
    #: Worker-level losses tolerated per cell before it is quarantined
    #: as ``lost`` (guards against a cell that reliably kills workers).
    max_reclaims: int = 5
    #: How long a graceful drain waits for in-flight cells.
    drain_secs: float = 5.0

    def resolved_workers(self) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        declared = env.get_int(ENV_SCHED_WORKERS)
        if declared is not None:
            return max(1, declared)
        return min(multiprocessing.cpu_count(), 4)

    def resolved_lease_secs(self) -> float:
        if self.lease_secs is not None:
            return self.lease_secs
        declared = env.get_float(ENV_SCHED_LEASE_SECS)
        assert declared is not None  # the knob declares a default
        return declared

    def resolved_heartbeat_secs(self) -> float:
        if self.heartbeat_secs is not None:
            return self.heartbeat_secs
        # Three beats per lease window: a single lost heartbeat never
        # expires a healthy worker's lease.
        return self.resolved_lease_secs() / 3.0


@dataclass
class SchedulerStats:
    """Operational counters for one scheduled run (diagnostics only —
    asserted by chaos tests, excluded from result comparisons)."""

    dispatches: int = 0
    reclaims: int = 0
    worker_deaths: int = 0
    expired_leases: int = 0
    respawns: int = 0
    duplicates: int = 0

    def summary(self) -> str:
        return (
            f"{self.dispatches} dispatch(es), {self.reclaims} reclaim(s) "
            f"({self.worker_deaths} worker death(s), {self.expired_leases} "
            f"expired lease(s)), {self.respawns} respawn(s), "
            f"{self.duplicates} duplicate completion(s)"
        )


@dataclass
class SchedulerReport(CampaignReport):
    """A campaign report plus the scheduler's operational counters."""

    stats: SchedulerStats = field(default_factory=SchedulerStats)


@dataclass
class _WorkerHandle:
    worker_id: int
    process: Any
    conn: multiprocessing.connection.Connection
    busy: Optional[Task] = None
    #: Set once the pipe has raised EOF — no more messages can arrive.
    pipe_closed: bool = False

    def alive(self) -> bool:
        return self.process.is_alive()


def _payload_core(body: Dict[str, Any]) -> Dict[str, Any]:
    """A cell record body minus journal framing (``kind`` / ``schema``),
    the comparable core used for dedup assertions."""
    return {
        k: v for k, v in sorted(body.items()) if k not in ("kind", "schema")
    }


def _fresh_result(payload: Dict[str, Any]) -> CellResult:
    """A :class:`CellResult` for a payload produced *this run* (the
    ``from_payload`` constructor is for journal restores and marks
    results resumed)."""
    result = CellResult.from_payload(payload)
    result.resumed = False
    return result


class _Engine:
    """One scheduled campaign run's mutable state and event loop."""

    def __init__(
        self,
        cells: Sequence[CellSpec],
        config: CampaignConfig,
        scheduler: SchedulerConfig,
        journal: Optional[CampaignJournal],
        progress: Optional[Callable[[str], None]],
        halt_after: Optional[int],
    ):
        self.cells = list(cells)
        self.config = config
        self.scheduler = scheduler
        self.journal = journal
        self.progress = progress
        self.halt_after = halt_after
        self.stats = SchedulerStats()
        # Supervision resolved once, in the parent: workers receive
        # literal values and never read (parent-scoped) knobs.
        self.timeout = config.resolved_timeout()
        self.mem_mb = config.resolved_mem_mb()
        self.retries = config.resolved_retries()
        self.policy = config.resolved_backoff()
        self.isolation = config.isolation
        self.lease_secs = scheduler.resolved_lease_secs()
        self.heartbeat_secs = scheduler.resolved_heartbeat_secs()
        workers = scheduler.resolved_workers()
        self.target_workers = max(1, min(workers, max(1, len(self.cells))))
        self.leases = LeaseTable(self.lease_secs)
        self.queue = ShardedTaskQueue(nshards=max(self.target_workers, 1))
        self.handles: Dict[int, _WorkerHandle] = {}
        self.next_worker_id = 0
        #: cell_id -> terminal record body (journal-ready payload).
        self.payloads: Dict[str, Dict[str, Any]] = {}
        #: cell_id -> CellResult for the report.
        self.results: Dict[str, CellResult] = {}
        self.fresh_count = 0
        self._tempdir: Optional[Any] = None
        self._context: Any
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._context = multiprocessing.get_context("spawn")

    # -- shard files ---------------------------------------------------------
    def _shard_path(self, worker_id: int) -> Path:
        if self.journal is not None:
            return self.journal.shard_path(worker_id)
        if self._tempdir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-sched-")
        return Path(self._tempdir.name) / f"shard-{worker_id:03d}.jsonl"

    def _shard_paths(self) -> List[Path]:
        if self.journal is not None:
            return self.journal.shard_paths()
        if self._tempdir is None:
            return []
        return sorted(Path(self._tempdir.name).glob("shard-*.jsonl"))

    def _delete_shards(self) -> None:
        for path in self._shard_paths():
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass

    # -- resume --------------------------------------------------------------
    def restore(self, resume: bool) -> None:
        """Load completed cells from the canonical journal and any
        leftover shards of a previous (crashed) scheduled run."""
        if self.journal is None:
            return
        if not resume:
            # Stale shards from an abandoned run must not leak into
            # this campaign's merge.
            self._delete_shards()
            self.journal.ensure_header()
            return
        completed = self.journal.completed_cells()
        merged = 0
        for path in self._shard_paths():
            for body in load_cell_records(path):
                cell_id = str(body["cell"])
                existing = completed.get(cell_id)
                if existing is None:
                    core = _payload_core(body)
                    self.journal.append_cell(core)
                    completed[cell_id] = body
                    merged += 1
                elif _payload_core(existing) != _payload_core(body):
                    raise SchedulerError(
                        f"shard {path.name} and journal disagree on cell "
                        f"{cell_id!r}: duplicate completions must be "
                        f"bit-identical (nondeterministic runner?)"
                    )
                else:
                    self.stats.duplicates += 1
        if merged:
            logger.info(
                "recovered %d completed cell(s) from %d journal shard(s)",
                merged,
                len(self._shard_paths()),
            )
        self._delete_shards()
        self.journal.ensure_header()
        known = {spec.cell_id() for spec in self.cells}
        for cell_id, body in completed.items():
            if cell_id in known:
                self.payloads[cell_id] = body
                self.results[cell_id] = CellResult.from_payload(body)

    # -- workers -------------------------------------------------------------
    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = self.next_worker_id
        self.next_worker_id += 1
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=worker_module._worker_main,
            args=(
                child_conn,
                worker_id,
                self.config.seed,
                str(self._shard_path(worker_id)),
                self.timeout,
                self.mem_mb,
                self.isolation,
                self.heartbeat_secs,
            ),
            # Workers fork per-attempt subprocesses, which daemonic
            # processes may not do; the engine kills them explicitly.
            daemon=False,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(
            worker_id=worker_id, process=process, conn=parent_conn
        )
        self.handles[worker_id] = handle
        return handle

    def _stop_worker(self, handle: _WorkerHandle, kill: bool = False) -> None:
        self.handles.pop(handle.worker_id, None)
        if kill and handle.process.is_alive():
            handle.process.kill()
        elif handle.process.is_alive():
            try:
                handle.conn.send((worker_module.MSG_STOP,))
            except (BrokenPipeError, OSError):
                handle.process.terminate()
        handle.process.join(_TERMINATE_GRACE_SECONDS)
        if handle.process.is_alive():  # pragma: no cover - stubborn worker
            handle.process.kill()
            handle.process.join()
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass

    # -- terminal results ----------------------------------------------------
    def _record_terminal(
        self, payload: Dict[str, Any], result: Optional[CellResult] = None
    ) -> None:
        cell_id = str(payload["cell"])
        self.payloads[cell_id] = payload
        self.results[cell_id] = (
            result if result is not None else _fresh_result(payload)
        )
        self.fresh_count += 1
        if self.progress is not None:
            done = len(self.payloads)
            quarantined = sum(
                1 for r in self.results.values() if r.quarantined
            )
            self.progress(
                f"[{done}/{len(self.cells)}] "
                f"ok={done - quarantined} quarantined={quarantined} "
                f"reclaims={self.stats.reclaims} "
                f"workers={len(self.handles)}"
            )
        if self.halt_after is not None and self.fresh_count >= self.halt_after:
            raise SchedulerHalted(
                f"halt_after={self.halt_after} reached with "
                f"{len(self.payloads)}/{len(self.cells)} cell(s) recorded"
            )

    def _quarantine(self, task: Task, classification: str, reason: str,
                    traceback: str = "") -> None:
        result = CellResult(
            spec=task.spec,
            status=STATUS_QUARANTINED,
            attempts=task.attempt + 1,
            classification=classification,
            reason=reason,
            traceback=traceback,
            delays=tuple(task.delays),
        )
        payload = result.payload()
        if self.journal is not None:
            # Quarantines are journaled by the parent (workers only
            # journal completions they produced).
            self.journal.append_cell(payload)
        self._record_terminal(payload, result)

    # -- message handling ----------------------------------------------------
    def _handle_done(self, handle: _WorkerHandle, payload: Dict[str, Any]) -> None:
        cell_id = str(payload["cell"])
        self.leases.release(cell_id)
        if handle.busy is not None and handle.busy.cell_id() == cell_id:
            handle.busy = None
        existing = self.payloads.get(cell_id)
        if existing is not None:
            self.stats.duplicates += 1
            if _payload_core(existing) != _payload_core(payload):
                raise SchedulerError(
                    f"duplicate completions of cell {cell_id!r} are not "
                    f"bit-identical (nondeterministic runner?)"
                )
            logger.warning(
                "cell %s: duplicate completion deduplicated", cell_id
            )
            return
        self._record_terminal(payload)

    def _handle_fail(
        self,
        handle: _WorkerHandle,
        spec_payload: Dict[str, Any],
        attempt: int,
        delays: List[float],
        classification: str,
        reason: str,
        traceback: str,
    ) -> None:
        spec = CellSpec.from_payload(spec_payload)
        cell_id = spec.cell_id()
        self.leases.release(cell_id)
        if handle.busy is not None and handle.busy.cell_id() == cell_id:
            reclaims = handle.busy.reclaims
            handle.busy = None
        else:  # pragma: no cover - fail raced a reclaim
            reclaims = 0
        logger.warning(
            "cell %s attempt %d/%d failed (%s): %s",
            cell_id,
            attempt + 1,
            1 + self.retries,
            classification,
            reason,
        )
        task = Task(
            spec=spec,
            attempt=attempt,
            delays=list(delays),
            reclaims=reclaims,
        )
        if attempt < self.retries:
            pause = retry_delay(
                self.policy, self.config.seed, cell_id, attempt, classification
            )
            task.delays.append(pause)
            task.attempt = attempt + 1
            self.queue.push(task, not_before=time.monotonic() + pause)
            return
        task.attempt = self.retries
        self._quarantine(task, classification, reason, traceback)

    def _reclaim(self, handle: _WorkerHandle, why: str) -> None:
        """A worker was lost (death or expired lease): reclaim its cell
        and re-dispatch, without consuming one of the cell's retries."""
        task = handle.busy
        handle.busy = None
        if task is None:
            return
        cell_id = task.cell_id()
        self.leases.release(cell_id)
        if cell_id in self.payloads:
            # Its completion already arrived (e.g. the worker died
            # right after reporting) — nothing to reclaim.
            return
        self.stats.reclaims += 1
        task.reclaims += 1
        if task.reclaims > self.scheduler.max_reclaims:
            self._quarantine(
                task,
                "lost",
                f"worker lost {task.reclaims} time(s) while running this "
                f"cell (last: {why})",
            )
            return
        logger.warning(
            "cell %s: reclaiming lease from worker %d (%s); re-dispatching",
            cell_id,
            handle.worker_id,
            why,
        )
        self.queue.push(task, not_before=time.monotonic())

    # -- event loop ----------------------------------------------------------
    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        for handle in list(self.handles.values()):
            if handle.busy is not None or not handle.alive():
                continue
            task = self.queue.pop_ready(now)
            if task is None:
                return
            sim_instructions = faults.fire_sim_faults()
            sched_instructions = faults.fire_sched_faults()
            if sim_instructions or sched_instructions:
                logger.warning(
                    "cell %s dispatch to worker %d: injecting %s",
                    task.cell_id(),
                    handle.worker_id,
                    ",".join(sim_instructions + sched_instructions),
                )
            try:
                handle.conn.send(
                    (
                        worker_module.MSG_RUN,
                        task.spec.payload(),
                        task.attempt,
                        list(task.delays),
                        sim_instructions,
                        sched_instructions,
                    )
                )
            except (BrokenPipeError, OSError):
                # The worker died between liveness check and send; the
                # death sweep will respawn it.  Requeue untouched.
                self.queue.push(task, not_before=now)
                continue
            handle.busy = task
            self.leases.grant(task.cell_id(), handle.worker_id, now)
            self.stats.dispatches += 1

    def _drain_messages(self, timeout: float) -> None:
        watched = [
            self.handles[worker_id]
            for worker_id in sorted(self.handles)
            if not self.handles[worker_id].pipe_closed
        ]
        if not watched:
            time.sleep(timeout)
            return
        by_conn = {handle.conn: handle for handle in watched}
        ready = multiprocessing.connection.wait(
            [handle.conn for handle in watched], timeout=timeout
        )
        for conn in ready:
            handle = by_conn[cast(multiprocessing.connection.Connection, conn)]
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                handle.pipe_closed = True
                continue
            tag = message[0]
            now = time.monotonic()
            if tag == worker_module.MSG_HEARTBEAT:
                self.leases.renew_worker(message[1], now)
            elif tag == worker_module.MSG_DONE:
                self._handle_done(handle, message[2])
            elif tag == worker_module.MSG_FAIL:
                self._handle_fail(handle, *message[2:])
            else:  # pragma: no cover - protocol drift guard
                raise SchedulerError(f"unknown worker message tag {tag!r}")

    def _sweep_failures(self) -> None:
        now = time.monotonic()
        # Expired leases first: a wedged-but-alive worker (stalled
        # heartbeats, hung cell beyond its timeout) must be killed
        # before its lease's cell can be safely re-dispatched.
        for lease in self.leases.expired(now):
            handle = self.handles.get(lease.worker_id)
            if handle is None:  # pragma: no cover - already swept
                self.leases.release(lease.cell_id)
                continue
            if not handle.process.is_alive():
                continue  # already dead; the death sweep below reclaims it
            self.stats.expired_leases += 1
            logger.warning(
                "worker %d lease on %s expired; killing worker",
                lease.worker_id,
                lease.cell_id,
            )
            handle.process.kill()
            handle.process.join(_TERMINATE_GRACE_SECONDS)
        # Dead workers: reclaim only after their pipe has been fully
        # drained, so a completion sent just before death still counts.
        for worker_id in sorted(self.handles):
            handle = self.handles[worker_id]
            if handle.alive():
                continue
            if not handle.pipe_closed and handle.conn.poll():
                continue  # messages still buffered; next tick drains them
            self.stats.worker_deaths += 1
            self._reclaim(handle, "worker process died")
            self._stop_worker(handle, kill=True)
            if len(self.payloads) < len(self.cells):
                self.stats.respawns += 1
                self._spawn_worker()

    def run(self) -> None:
        remaining = [
            spec for spec in self.cells if spec.cell_id() not in self.payloads
        ]
        for spec in remaining:
            self.queue.push(Task(spec=spec))
        if not remaining:
            return
        for _ in range(max(1, min(self.target_workers, len(remaining)))):
            self._spawn_worker()
        while len(self.payloads) < len(self.cells):
            self._dispatch_ready()
            self._drain_messages(_TICK_SECONDS)
            self._sweep_failures()

    def drain(self) -> None:
        """Graceful shutdown: no new dispatches, bounded wait for
        in-flight cells, then merge shards so nothing completed is lost."""
        deadline = time.monotonic() + self.scheduler.drain_secs
        while (
            any(handle.busy is not None for handle in self.handles.values())
            and time.monotonic() < deadline
        ):
            self._drain_messages(_TICK_SECONDS)
            self._sweep_failures()
        self.merge_shards_into_journal()

    def merge_shards_into_journal(self) -> None:
        """Append every shard-only completion to the canonical journal
        (durable, append-order) and drop the shards — the interrupted-
        run finalizer; a finished run rewrites canonically instead."""
        if self.journal is None:
            return
        recorded = self.journal.completed_cells()
        for path in self._shard_paths():
            for body in load_cell_records(path):
                cell_id = str(body["cell"])
                if cell_id not in recorded:
                    core = _payload_core(body)
                    self.journal.append_cell(core)
                    recorded[cell_id] = body
        self._delete_shards()

    def finalize(self) -> None:
        """All cells terminal: rewrite the journal into canonical
        campaign order (byte-identical to a clean serial run's) and
        drop the shards."""
        if self.journal is not None:
            ordered = [
                self.payloads[spec.cell_id()] for spec in self.cells
            ]
            self.journal.rewrite_cells(ordered)
            self._delete_shards()

    def shutdown(self, kill: bool = False) -> None:
        for handle in list(self.handles.values()):
            self._stop_worker(handle, kill=kill)
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def report(self) -> SchedulerReport:
        ordered = [self.results[spec.cell_id()] for spec in self.cells]
        return SchedulerReport(results=ordered, stats=self.stats)


def run_scheduled_campaign(
    cells: Sequence[CellSpec],
    config: Optional[CampaignConfig] = None,
    scheduler: Optional[SchedulerConfig] = None,
    journal: Optional[CampaignJournal] = None,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    _halt_after: Optional[int] = None,
) -> SchedulerReport:
    """Run every cell to a terminal result across N worker processes.

    Same contract as :func:`~repro.supervisor.campaign.run_campaign`
    (never abort; quarantine failures; ``resume=True`` restores
    journaled cells bit-identically), with worker crashes, hangs, and
    stalls absorbed via lease reclamation.  ``_halt_after`` is the
    test-only crash hook: after that many newly recorded cells the
    engine kills its workers and raises
    :class:`~repro.exceptions.SchedulerHalted` *without* merging or
    finalizing — simulating the scheduler process dying — so tests can
    exercise shard recovery on the next ``resume=True`` run.
    """
    config = config if config is not None else CampaignConfig()
    scheduler = scheduler if scheduler is not None else SchedulerConfig()
    if resume and journal is None:
        raise SupervisorError("resume requested without a journal")
    if resume and journal is not None:
        verify_resume_key(journal, cells, config.seed)
    # Materialize the fault plan pre-fork so workers inherit the parent's
    # configured plan rather than rebuilding from the environment.
    faults.get_plan()
    engine = _Engine(
        cells=cells,
        config=config,
        scheduler=scheduler,
        journal=journal,
        progress=progress,
        halt_after=_halt_after,
    )
    engine.restore(resume)

    def _sigterm_to_interrupt(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt(f"signal {signum}")

    previous_sigterm: Any = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
    except ValueError:  # pragma: no cover - not in the main thread
        previous_sigterm = None
    try:
        engine.run()
        engine.shutdown()
        engine.finalize()
    except KeyboardInterrupt:
        logger.warning("interrupt: draining scheduled campaign")
        engine.drain()
        engine.shutdown(kill=True)
        raise
    except SchedulerHalted:
        # The simulated hard stop: workers die, shards stay on disk.
        engine.shutdown(kill=True)
        raise
    finally:
        engine.shutdown(kill=True)
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
    report = engine.report()
    logger.info(
        "scheduled campaign finished: %s; %s",
        report.summary(),
        engine.stats.summary(),
    )
    return report
