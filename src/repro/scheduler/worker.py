"""The scheduler worker process: one cell attempt at a time.

A worker is a forked child of the scheduler engine that loops over
dispatch messages from its pipe, runs each cell attempt through the
supervisor's isolation machinery (:mod:`repro.supervisor.isolation` —
so per-cell timeouts, memory caps, and ``sim_*`` fault instructions
behave exactly as under serial supervision), and reports back.

Two disciplines make crash recovery sound:

* **Journal-then-report.**  A completed cell is appended to the
  worker's journal shard — flushed and fsynced — *before* the
  completion message is sent, so a worker killed between the two leaves
  a durable record that resume finds, and a worker killed before the
  append leaves nothing (the lease expires and the cell re-runs).
  At-least-once execution with durable completions.
* **No environment reads.**  Everything a worker needs (resolved
  timeout, memory cap, isolation mode, shard path, heartbeat period)
  is resolved by the parent and shipped as literal values, so
  parent-scoped knobs are never read on the fork side.

Heartbeats run on a daemon thread, sharing the pipe under a lock; the
``heartbeat_stall`` chaos instruction silences the thread *and* stalls
the dispatch, so the parent's only signal is the expiring lease — the
exact failure mode of a live-but-wedged worker.
"""

from __future__ import annotations

import logging
import multiprocessing.connection
import os
import signal
import threading
import time
from typing import Optional

from repro.supervisor.cells import STATUS_OK, CellResult, CellSpec
from repro.supervisor.isolation import run_attempt_inline, run_attempt_process
from repro.supervisor.journal import ShardWriter
from repro.utils import faults

logger = logging.getLogger(__name__)

#: Dispatch message tag (parent -> worker).
MSG_RUN = "run"
#: Orderly shutdown tag (parent -> worker).
MSG_STOP = "stop"
#: Heartbeat tag (worker -> parent).
MSG_HEARTBEAT = "hb"
#: Completion tag (worker -> parent): carries the terminal OK payload.
MSG_DONE = "done"
#: Failed-attempt tag (worker -> parent): the parent decides retry vs
#: quarantine, so the message carries the full attempt outcome.
MSG_FAIL = "fail"


def _heartbeat_loop(
    conn: multiprocessing.connection.Connection,
    worker_id: int,
    period: float,
    stop: threading.Event,
    send_lock: threading.Lock,
) -> None:
    while not stop.wait(period):
        try:
            with send_lock:
                conn.send((MSG_HEARTBEAT, worker_id))
        except (BrokenPipeError, OSError):  # parent went away
            return


def _worker_main(
    conn: multiprocessing.connection.Connection,
    worker_id: int,
    campaign_seed: int,
    shard_path: str,
    timeout: Optional[float],
    mem_mb: Optional[int],
    isolation: str,
    heartbeat_secs: float,
) -> None:  # pragma: no cover - exercised via subprocesses in tests
    writer = ShardWriter(shard_path)
    send_lock = threading.Lock()
    stop_heartbeat = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(conn, worker_id, heartbeat_secs, stop_heartbeat, send_lock),
        daemon=True,
    )
    beat.start()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == MSG_STOP:
            return
        _, spec_payload, attempt, delays, sim_instructions, sched_instructions = (
            message
        )
        if "worker_abort" in sched_instructions:
            # Die exactly as a SIGKILLed worker would: mid-lease, after
            # accepting the cell, before any journaling.
            logger.warning("worker %d: injected worker_abort", worker_id)
            os.kill(os.getpid(), signal.SIGKILL)
        if "heartbeat_stall" in sched_instructions:
            # Wedge silently: no heartbeats, no progress, no crash.  The
            # parent's lease deadline is the only way out.
            logger.warning("worker %d: injected heartbeat_stall", worker_id)
            stop_heartbeat.set()
            time.sleep(faults.HEARTBEAT_STALL_SECONDS)
        spec = CellSpec.from_payload(spec_payload)
        if isolation == "inline":
            outcome = run_attempt_inline(spec, campaign_seed, sim_instructions)
        else:
            outcome = run_attempt_process(
                spec,
                campaign_seed,
                timeout=timeout,
                mem_mb=mem_mb,
                instructions=sim_instructions,
            )
        if outcome.ok:
            result = CellResult(
                spec=spec,
                status=STATUS_OK,
                value=outcome.value,
                attempts=attempt + 1,
                delays=tuple(delays),
            )
            payload = result.payload()
            repeats = 2 if "duplicate_completion" in sched_instructions else 1
            for _ in range(repeats):
                # Durability before visibility: the shard record must
                # exist before the parent can count the cell done.
                writer.append_cell(payload)
                try:
                    with send_lock:
                        conn.send((MSG_DONE, worker_id, payload))
                except (BrokenPipeError, OSError):
                    return
        else:
            try:
                with send_lock:
                    conn.send(
                        (
                            MSG_FAIL,
                            worker_id,
                            spec_payload,
                            attempt,
                            list(delays),
                            outcome.classification,
                            outcome.reason,
                            outcome.traceback,
                        )
                    )
            except (BrokenPipeError, OSError):
                return
