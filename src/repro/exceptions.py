"""Exception hierarchy for the ``repro`` package.

Every error deliberately raised by this library derives from
:class:`ReproError` so downstream users can catch library failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``KeyError`` from internal bugs, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Malformed graph structure (bad ports, dangling half-edges, ...)."""


class LabelingError(ReproError):
    """A half-edge labeling is structurally invalid for its graph."""


class ProblemDefinitionError(ReproError):
    """An LCL problem definition is inconsistent or incomplete."""


class SimulationError(ReproError):
    """A model simulation (LOCAL / VOLUME / PROD-LOCAL) cannot proceed."""


class NodeExecutionError(SimulationError):
    """A node's per-node computation crashed inside the simulator.

    Wraps any non-:class:`ReproError` exception escaping an algorithm's
    ``run``/``step`` callback so that supervisors and campaign runners
    receive a *structured* failure — which node crashed, in which
    algorithm, at what delegation depth — instead of an anonymous
    ``KeyError`` three frames deep.  The original exception is chained
    as ``__cause__`` and the full traceback is what a quarantined cell
    records.
    """

    def __init__(self, message: str, node: int, algorithm: str):
        super().__init__(message)
        self.node = node
        self.algorithm = algorithm


class ProbeError(SimulationError):
    """An invalid probe was issued in the VOLUME / LCA model."""


class AlgorithmError(ReproError):
    """An algorithm produced output outside its declared contract."""


class UnsolvableError(ReproError):
    """The requested instance admits no correct solution."""


class DecidabilityError(ReproError):
    """A decision procedure was invoked outside its supported fragment."""


class BudgetExceededError(ReproError):
    """A cooperative resource budget was exhausted mid-computation.

    Carries machine-readable diagnostics (see
    :class:`repro.utils.budget.BudgetDiagnostics`): which limit tripped,
    the observed value, the elapsed wall time, how many configurations
    were enumerated, and — when the budget was attached to a sequence
    walk — the round-elimination step that was in progress.  Callers such
    as :func:`repro.roundelim.gap.speedup` convert this into a structured
    ``UNKNOWN(>= step k)`` verdict rather than letting it escape.
    """

    def __init__(self, diagnostics):
        super().__init__(str(diagnostics))
        self.diagnostics = diagnostics


class BruteForceLimitError(ReproError):
    """A brute-force search was asked to explore an instance beyond its
    declared size guard.

    :func:`repro.lcl.checker.brute_force_solution` is exponential in the
    number of half-edges; this error replaces the former behavior of
    silently running hot on oversized graphs.  Pass ``max_nodes=None``
    to opt back into unguarded search.
    """


class CertificateError(ReproError):
    """A verdict certificate cannot be produced, serialized, or decoded.

    Note the asymmetry with checking: :func:`repro.verify.check_certificate`
    reports tampering/corruption as a failed :class:`~repro.verify.CheckOutcome`
    rather than raising, so a hostile certificate can never crash the
    checker; this error signals *producer-side* failures (unserializable
    labels, a result that carries nothing to certify, malformed files).
    """


class LandscapeError(ReproError):
    """A landscape measurement series or panel is malformed.

    Raised for series that cannot be fitted honestly: empty sample
    grids, NaN/infinite measurements (a crashed cell must become a
    quarantined row, never a poisoned fit), or mismatched ``ns`` /
    ``values`` lengths.  Replaces the former behavior of letting
    ``fit_growth`` crash with an unguarded ``ValueError`` /
    ``ZeroDivisionError`` mid-panel.
    """


class SupervisorError(ReproError):
    """A supervised campaign cannot be configured or safely journaled.

    Signals *caller* errors — an unknown cell runner, a missing journal
    directory, a journal belonging to a different campaign.  Damage to
    journal contents never raises this: torn or corrupt journal lines
    degrade to recomputation of the affected cells, exactly like
    checkpoint corruption (:class:`CheckpointError` semantics).
    """


class SchedulerError(SupervisorError):
    """The multi-worker campaign scheduler detected an integrity violation.

    Raised when the lease-based scheduler (:mod:`repro.scheduler`)
    observes something that must never happen under the determinism
    contract — most importantly two completions of the same cell whose
    payloads are *not* bit-identical (duplicate completions are expected
    under at-least-once execution; divergent ones mean a cell runner is
    nondeterministic).  Worker crashes, expired leases, and duplicate-
    but-identical completions never raise this: they are recovered,
    counted, and logged.
    """


class SchedulerHalted(SchedulerError):
    """A scheduled campaign was hard-stopped before finishing.

    Raised by the test-only crash hook (``halt_after``) that simulates
    the scheduler process dying mid-campaign: workers are killed
    immediately, no drain or journal finalization runs, and per-worker
    journal shards are deliberately left on disk for the next
    ``resume=True`` run to recover.
    """


class CheckpointError(ReproError):
    """A sequence checkpoint cannot be written or safely resumed from.

    Unreadable/corrupt snapshots never raise this during :meth:`resume`
    (they degrade to recomputation); it signals *caller* errors such as a
    missing checkpoint directory."""
