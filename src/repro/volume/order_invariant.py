"""Order invariance in the VOLUME model (Definition 2.10, Theorem 2.11).

Theorem 4.1's proof has two halves: a Ramsey argument showing every
``o(log* n)``-probe algorithm has an order-invariant twin (existential —
see DESIGN.md for why we verify invariance directly instead of computing
Ramsey numbers), and the constructive Theorem 2.11 speedup: run an
order-invariant algorithm with its node-count parameter pinned to the
``n₀`` satisfying ``Δ^{r+1}·(T(n₀)+1) <= n₀/Δ``, obtaining an O(1)-probe
algorithm.  Both executable pieces live here.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.local.order_invariant import smallest_valid_n0 as _smallest_valid_n0
from repro.volume.model import VolumeAlgorithm, VolumeQuery, run_volume_algorithm


def _order_preserving_reassignment(
    ids: Sequence[int], rng: random.Random, universe_factor: int = 10
) -> list:
    n = len(ids)
    fresh = sorted(
        rng.sample(range(1, universe_factor * max(n, max(ids, default=1)) + 1), n)
    )
    ranking = sorted(range(n), key=lambda v: ids[v])
    reassigned = [0] * n
    for rank, v in enumerate(ranking):
        reassigned[v] = fresh[rank]
    return reassigned


def check_volume_order_invariance(
    algorithm: VolumeAlgorithm,
    graph: Graph,
    ids: Sequence[int],
    inputs: Optional[HalfEdgeLabeling] = None,
    trials: int = 5,
    seed: int = 0,
) -> bool:
    """Definition 2.10, checked by rerunning under order-preserving IDs.

    Sound as a refuter; the almost-identical-tuples quantification of the
    definition is exercised exhaustively on small instances in the tests.
    """
    baseline = run_volume_algorithm(graph, algorithm, inputs=inputs, ids=list(ids))
    rng = random.Random(seed)
    for _ in range(trials):
        reassigned = _order_preserving_reassignment(ids, rng)
        rerun = run_volume_algorithm(graph, algorithm, inputs=inputs, ids=reassigned)
        for half_edge, label in baseline.outputs.items():
            if rerun.outputs.get(half_edge) != label:
                return False
    return True


def find_order_invariant_id_subset(
    algorithm: VolumeAlgorithm,
    graph: Graph,
    universe: Sequence[int],
    size: int,
    inputs: Optional[HalfEdgeLabeling] = None,
) -> Optional[tuple]:
    """A concrete miniature of Lemma 4.2's Ramsey step.

    The lemma asserts that some identifier subset ``S_n`` exists on which
    a given algorithm behaves order-invariantly (all almost-identical
    tuple histories get equal answers).  The Ramsey bounds are
    astronomical, but the *statement* is checkable at toy scale: this
    searches all ``size``-subsets of ``universe`` for one on which the
    algorithm's outputs on ``graph`` depend only on the relative order of
    the assigned identifiers (``size`` must exceed the node count, so that
    each relative order is realized by several value choices), and
    returns the first such subset (or
    ``None`` — which for an algorithm that is a function of finitely many
    colors cannot happen once ``universe`` is large enough, exactly as
    the pigeonhole/Ramsey argument promises).
    """
    import itertools

    n = graph.num_nodes
    for subset in itertools.combinations(sorted(universe), size):
        invariant = True
        reference: dict = {}
        for assignment in itertools.permutations(subset, n):
            ranking = tuple(sorted(range(n), key=lambda v: assignment[v]))
            result = run_volume_algorithm(
                graph, algorithm, inputs=inputs, ids=list(assignment)
            )
            outputs = tuple(sorted(result.outputs.items()))
            if ranking in reference:
                if reference[ranking] != outputs:
                    invariant = False
                    break
            else:
                reference[ranking] = outputs
        if invariant:
            return subset
    return None


def smallest_volume_n0(
    probes_of_n, max_degree: int, checking_radius: int, upper_limit: int = 10**7
) -> int:
    """The Theorem 2.11 feasibility bound ``Δ^{r+1}(T(n₀)+1) <= n₀/Δ``."""
    return _smallest_valid_n0(probes_of_n, max_degree, checking_radius, upper_limit)


class _FooledVolumeAlgorithm(VolumeAlgorithm):
    def __init__(self, inner: VolumeAlgorithm, n0: int):
        self.inner = inner
        self.n0 = n0
        self.name = f"fooled[{inner.name}, n0={n0}]"

    def probes(self, n: int) -> int:
        return self.inner.probes(min(n, self.n0))

    def answer(self, query: VolumeQuery) -> dict:
        query.declared_n = min(query.declared_n, self.n0)
        return self.inner.answer(query)


def fooled_constant_volume(inner: VolumeAlgorithm, n0: int) -> VolumeAlgorithm:
    """Theorem 2.11 for VOLUME: pin the node-count parameter to ``n₀``.

    Correct for order-invariant inner algorithms satisfying the
    :func:`smallest_volume_n0` condition; the result uses ``T(n₀) = O(1)``
    probes on every input size.
    """
    return _FooledVolumeAlgorithm(inner, n0)
