"""The VOLUME model (Definitions 2.8 and 2.9), executable.

A VOLUME algorithm answers a query at a node ``v`` by *adaptively probing*:
it starts knowing ``v``'s local tuple ``(id, deg, in)`` and may repeatedly
ask for "the node behind port ``p`` of the ``j``-th node I have seen"; its
answer assigns an output label to each of ``v``'s ports.  The probe budget
``T(n)`` — not the explored radius — is the complexity measure; this is
the "seeing far versus seeing wide" distinction of Rosenbaum–Suomela [42],
and the regime where the paper shows the landscape collapses to
``O(1) / Θ(log* n) / …`` (Theorem 4.1).

The oracle counts every probe and enforces the declared budget, so the
benchmark's probe-complexity measurements come from the same accounting
that the correctness tests run under.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import AlgorithmError, ProbeError, SimulationError
from repro.graphs.core import Graph, HalfEdgeLabeling


@dataclass(frozen=True)
class NodeTuple:
    """What one probe reveals (Definition 2.8): ``(id, deg, in)``.

    ``inputs[p]`` is the input label on the node's ``p``-th half-edge.
    The tuple deliberately hides the node's index in the underlying graph;
    algorithms may navigate only through ports.
    """

    identifier: int
    degree: int
    inputs: Tuple[Any, ...]


class ProbeOracle:
    """Graph access restricted to Definition 2.9 probes, with counting."""

    def __init__(
        self,
        graph: Graph,
        inputs: Optional[HalfEdgeLabeling],
        ids: Sequence[int],
    ):
        if len(set(ids)) != graph.num_nodes:
            raise SimulationError("identifiers must be distinct, one per node")
        self.graph = graph
        self.inputs = inputs
        self.ids = list(ids)
        self.probe_count = 0

    def tuple_of(self, node: int) -> NodeTuple:
        return NodeTuple(
            identifier=self.ids[node],
            degree=self.graph.degree(node),
            inputs=tuple(
                self.inputs.get((node, p)) if self.inputs is not None else None
                for p in range(self.graph.degree(node))
            ),
        )

    def probe(self, node: int, port: int) -> int:
        """The graph node behind ``node``'s ``port``; counts one probe."""
        if not 0 <= port < self.graph.degree(node):
            raise ProbeError(f"node {node} has no port {port}")
        self.probe_count += 1
        return self.graph.neighbor(node, port)


class VolumeQuery:
    """One query execution: the per-node view handed to the algorithm.

    ``known[j]`` is the ``j``-th discovered node (``known[0]`` is the
    queried node itself); :meth:`probe` implements the
    ``f_{n,i}: (j, p) ↦ new tuple`` step of Definition 2.9 and enforces
    the probe budget.
    """

    def __init__(self, oracle: ProbeOracle, start: int, budget: int, declared_n: int):
        self._oracle = oracle
        self._known: List[int] = [start]
        self.tuples: List[NodeTuple] = [oracle.tuple_of(start)]
        self.budget = budget
        self.declared_n = declared_n
        self.probes_used = 0

    @property
    def start_tuple(self) -> NodeTuple:
        return self.tuples[0]

    @property
    def known_count(self) -> int:
        return len(self._known)

    def probe(self, j: int, port: int) -> NodeTuple:
        """Reveal the node behind port ``port`` of the ``j``-th known node."""
        if not 0 <= j < len(self._known):
            raise ProbeError(f"no known node with index {j}")
        if self.probes_used >= self.budget:
            raise ProbeError(
                f"probe budget {self.budget} exhausted for this query"
            )
        self.probes_used += 1
        neighbor = self._oracle.probe(self._known[j], port)
        self._known.append(neighbor)
        revealed = self._oracle.tuple_of(neighbor)
        self.tuples.append(revealed)
        return revealed


class VolumeAlgorithm(abc.ABC):
    """A VOLUME algorithm: probe budget plus per-query answer function."""

    name: str = "volume-algorithm"

    @abc.abstractmethod
    def probes(self, n: int) -> int:
        """Declared probe complexity ``T(n)``."""

    @abc.abstractmethod
    def answer(self, query: VolumeQuery) -> Dict[int, Any]:
        """Output labels for the queried node's ports."""


class FunctionalVolumeAlgorithm(VolumeAlgorithm):
    """Definition 2.9, literally: a family of probe functions.

    ``probe_fn(n, i, tuples) -> (j, p)`` plays the role of ``f_{n,i}``
    (which known node to probe next, through which port), and
    ``output_fn(n, tuples) -> {port: label}`` plays ``f_{n,T(n)+1}``.
    ``tuples`` is the history ``(t_{v_0}, …, t_{v_i})`` of revealed
    :class:`NodeTuple` records, exactly as the definition feeds it.

    ``probe_fn`` may return ``None`` to stop early (equivalent to probing
    a dummy and ignoring it; kept explicit for convenience).
    """

    def __init__(self, probes_of_n, probe_fn, output_fn, name="functional-volume"):
        self._probes = probes_of_n
        self.probe_fn = probe_fn
        self.output_fn = output_fn
        self.name = name

    def probes(self, n: int) -> int:
        return self._probes(n)

    def answer(self, query: VolumeQuery) -> Dict[int, Any]:
        n = query.declared_n
        for i in range(1, self.probes(n) + 1):
            step = self.probe_fn(n, i, tuple(query.tuples))
            if step is None:
                break
            j, port = step
            query.probe(j, port)
        return self.output_fn(n, tuple(query.tuples))


@dataclass
class VolumeResult:
    """Outcome of querying every node once."""

    outputs: HalfEdgeLabeling
    max_probes_used: int
    declared_probes: int
    probes_per_node: List[int]

    @property
    def within_declared_budget(self) -> bool:
        return self.max_probes_used <= self.declared_probes


def run_volume_algorithm(
    graph: Graph,
    algorithm: VolumeAlgorithm,
    inputs: Optional[HalfEdgeLabeling] = None,
    ids: Optional[Sequence[int]] = None,
    declared_n: Optional[int] = None,
) -> VolumeResult:
    """Query ``algorithm`` at every node and collect the labeling.

    ``declared_n`` supports the Theorem 2.11 fooling; identifiers default
    to ``1 .. n`` (the LCA convention) when not supplied.
    """
    n = graph.num_nodes if declared_n is None else declared_n
    if ids is None:
        ids = list(range(1, graph.num_nodes + 1))
    oracle = ProbeOracle(graph, inputs, ids)
    budget = algorithm.probes(n)
    outputs = HalfEdgeLabeling(graph)
    probes_per_node: List[int] = []
    for v in range(graph.num_nodes):
        if graph.degree(v) == 0:
            probes_per_node.append(0)
            continue
        query = VolumeQuery(oracle, v, budget=budget, declared_n=n)
        port_outputs = algorithm.answer(query)
        probes_per_node.append(query.probes_used)
        if set(port_outputs) != set(range(graph.degree(v))):
            raise AlgorithmError(
                f"{algorithm.name} must label exactly the ports of node {v}"
            )
        for port, label in port_outputs.items():
            outputs[(v, port)] = label
    return VolumeResult(
        outputs=outputs,
        max_probes_used=max(probes_per_node, default=0),
        declared_probes=budget,
        probes_per_node=probes_per_node,
    )
