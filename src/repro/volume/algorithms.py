"""VOLUME algorithms populating the Figure-1 probe-complexity panel.

* :class:`NeighborhoodAggregate` — O(1) probes (constant class);
* :class:`ChainColeVishkin` — Θ(log* n) probes: 3-coloring of oriented
  paths by probing a successor chain of length O(log* n) (the "seeing
  far" workload; its *radius* is also Θ(log* n), which is why on general
  graphs only the VOLUME measure collapses the dense region, per §1.2);
* :class:`ComponentCount` — Θ(n) probes (global class).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.exceptions import AlgorithmError, ProbeError
from repro.local.algorithms.cole_vishkin import PREDECESSOR, SUCCESSOR, palette_schedule
from repro.volume.model import NodeTuple, VolumeAlgorithm, VolumeQuery


def _port_with_label(node_tuple: NodeTuple, label: Any) -> Optional[int]:
    for port, value in enumerate(node_tuple.inputs):
        if value == label:
            return port
    return None


class NeighborhoodAggregate(VolumeAlgorithm):
    """Output the maximum degree among the node and its neighbors.

    Probe complexity Δ = O(1): the paper's archetype of the constant
    class in the VOLUME landscape.
    """

    name = "neighborhood-max-degree"

    def __init__(self, max_degree: int):
        self.max_degree = max_degree

    def probes(self, n: int) -> int:
        return self.max_degree

    def answer(self, query: VolumeQuery) -> Dict[int, Any]:
        best = query.start_tuple.degree
        for port in range(query.start_tuple.degree):
            revealed = query.probe(0, port)
            best = max(best, revealed.degree)
        return {port: best for port in range(query.start_tuple.degree)}


class ChainColeVishkin(VolumeAlgorithm):
    """3-coloring of consistently oriented paths/cycles, Θ(log* n) probes.

    The queried node probes its successor chain for ``t + 1`` hops (where
    ``t`` is the CV round count for the ID palette) and its predecessor
    chain for 3 hops, then simulates Cole–Vishkin plus the three
    retirement rounds on the gathered window — the same simulation as
    :class:`repro.local.algorithms.shortcut.ShortcutColeVishkin`, but
    paying one probe per hop instead of one radius unit.
    """

    name = "chain-cole-vishkin"

    def __init__(self, id_exponent: int = 3, label_prefix: str = "c"):
        self.id_exponent = id_exponent
        self.label_prefix = label_prefix

    def _cv_rounds(self, n: int) -> int:
        return len(palette_schedule(max(2, n**self.id_exponent + 1)))

    def probes(self, n: int) -> int:
        return self._cv_rounds(n) + 4 + 3

    def answer(self, query: VolumeQuery) -> Dict[int, Any]:
        rounds = self._cv_rounds(query.declared_n)
        window: Dict[int, NodeTuple] = {0: query.start_tuple}
        # Walk the successor chain.
        index_of_offset = {0: 0}
        for step in range(rounds + 4):
            current = window.get(step)
            if current is None:
                break
            port = _port_with_label(current, SUCCESSOR)
            if port is None:
                break
            revealed = query.probe(index_of_offset[step], port)
            window[step + 1] = revealed
            index_of_offset[step + 1] = query.known_count - 1
        # Walk the predecessor chain three hops.
        for step in range(0, -3, -1):
            current = window.get(step)
            if current is None:
                break
            port = _port_with_label(current, PREDECESSOR)
            if port is None:
                break
            revealed = query.probe(index_of_offset[step], port)
            window[step - 1] = revealed
            index_of_offset[step - 1] = query.known_count - 1

        memo: Dict[tuple, Optional[int]] = {}

        def color_at(offset: int, t: int) -> Optional[int]:
            key = (offset, t)
            if key in memo:
                return memo[key]
            node = window.get(offset)
            if node is None:
                memo[key] = None
            elif t == 0:
                memo[key] = node.identifier
            else:
                mine = color_at(offset, t - 1)
                memo[key] = (
                    None if mine is None else self._cv_step(mine, color_at(offset + 1, t - 1))
                )
            return memo[key]

        current = {k: color_at(k, rounds) for k in range(-3, 4)}
        for retiring in (5, 4, 3):
            updated = dict(current)
            for k in range(-2, 3):
                if current.get(k) != retiring:
                    continue
                taken = {current.get(k - 1), current.get(k + 1)}
                for candidate in range(3):
                    if candidate not in taken:
                        updated[k] = candidate
                        break
            current = updated
        mine = current[0]
        if mine is None or mine > 5:
            raise AlgorithmError("chain CV failed to color the queried node")
        label = f"{self.label_prefix}{mine}"
        return {port: label for port in range(query.start_tuple.degree)}

    @staticmethod
    def _cv_step(color: int, successor_color: Optional[int]) -> int:
        if successor_color is None:
            return color & 1
        differing = color ^ successor_color
        if differing == 0:
            raise AlgorithmError("equal colors across a path edge")
        index = (differing & -differing).bit_length() - 1
        return 2 * index + ((color >> index) & 1)


class ComponentCount(VolumeAlgorithm):
    """Output the size of the node's connected component: Θ(n) probes.

    The global end of the VOLUME landscape — a problem whose probe
    complexity provably scales linearly (it must see every node).
    """

    name = "component-count"

    def probes(self, n: int) -> int:
        # BFS probes every half-edge once: <= 2 * edges <= Δ n; declare a
        # generous linear budget.
        return max(1, 4 * n)

    def answer(self, query: VolumeQuery) -> Dict[int, Any]:
        seen_ids = {query.start_tuple.identifier}
        frontier = [(0, query.start_tuple)]
        while frontier:
            index, node = frontier.pop()
            for port in range(node.degree):
                revealed = query.probe(index, port)
                if revealed.identifier not in seen_ids:
                    seen_ids.add(revealed.identifier)
                    frontier.append((query.known_count - 1, revealed))
        size = len(seen_ids)
        return {port: size for port in range(query.start_tuple.degree)}
