"""The LCA model: VOLUME plus far probes and ``1..n`` identifiers.

An LCA (local computation algorithm [2, 44]) differs from a VOLUME
algorithm in two ways (§2.2):

1. it may *far-probe*: ask for the node with a given identifier directly,
   without navigating ports — possible because IDs are ``1 .. n``;
2. it may rely on that exact ID range.

Theorem 2.12 (Göös et al. [30]) says far probes do not help below
``o(√log n)``; together with the ID-range padding argument of §2.2, a
VOLUME speedup transfers to LCAs.  We implement the model (so probe
counts of LCAs are measurable) and the *constructive* ID-range reduction;
the far-probe elimination itself is an existence theorem whose executable
content is exactly "run the VOLUME algorithm and ignore far probes",
which :func:`far_probe_free_equivalent` makes precise for algorithms
declaring their far-probe usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.exceptions import ProbeError, SimulationError
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.volume.model import NodeTuple, ProbeOracle, VolumeAlgorithm, VolumeQuery


class LCAOracle(ProbeOracle):
    """A probe oracle that additionally answers far probes by identifier.

    Requires the LCA convention: identifiers are exactly ``1 .. n``.
    """

    def __init__(self, graph: Graph, inputs: Optional[HalfEdgeLabeling], ids: Sequence[int]):
        super().__init__(graph, inputs, ids)
        if sorted(ids) != list(range(1, graph.num_nodes + 1)):
            raise SimulationError("the LCA model requires identifiers 1..n")
        self._node_of_id = {identifier: v for v, identifier in enumerate(ids)}
        self.far_probe_count = 0

    def far_probe(self, identifier: int) -> int:
        """The node with the given identifier; counts one far probe."""
        if identifier not in self._node_of_id:
            raise ProbeError(f"no node with identifier {identifier}")
        self.far_probe_count += 1
        self.probe_count += 1
        return self._node_of_id[identifier]


class LCAQuery(VolumeQuery):
    """A query that can also far-probe (the revealed node becomes known)."""

    def far_probe(self, identifier: int) -> NodeTuple:
        if self.probes_used >= self.budget:
            raise ProbeError(f"probe budget {self.budget} exhausted for this query")
        self.probes_used += 1
        oracle: LCAOracle = self._oracle  # type: ignore[assignment]
        node = oracle.far_probe(identifier)
        self._known.append(node)
        revealed = oracle.tuple_of(node)
        self.tuples.append(revealed)
        return revealed


def run_lca_algorithm(
    graph: Graph,
    algorithm: VolumeAlgorithm,
    inputs: Optional[HalfEdgeLabeling] = None,
) -> "LCAResult":
    """Query an algorithm at every node under the LCA conventions."""
    ids = list(range(1, graph.num_nodes + 1))
    oracle = LCAOracle(graph, inputs, ids)
    budget = algorithm.probes(graph.num_nodes)
    outputs = HalfEdgeLabeling(graph)
    probes_per_node = []
    for v in range(graph.num_nodes):
        if graph.degree(v) == 0:
            probes_per_node.append(0)
            continue
        query = LCAQuery(oracle, v, budget=budget, declared_n=graph.num_nodes)
        for port, label in algorithm.answer(query).items():
            outputs[(v, port)] = label
        probes_per_node.append(query.probes_used)
    return LCAResult(
        outputs=outputs,
        max_probes_used=max(probes_per_node, default=0),
        far_probes_used=oracle.far_probe_count,
    )


@dataclass
class LCAResult:
    outputs: HalfEdgeLabeling
    max_probes_used: int
    far_probes_used: int


class _RangePaddedAlgorithm(VolumeAlgorithm):
    """§2.2's reduction: tolerate IDs from ``[1, n^k]`` via ``T(n^k)``."""

    def __init__(self, inner: VolumeAlgorithm, exponent: int):
        self.inner = inner
        self.exponent = exponent
        self.name = f"range-padded[{inner.name}, k={exponent}]"

    def probes(self, n: int) -> int:
        return self.inner.probes(n**self.exponent)

    def answer(self, query: VolumeQuery) -> Dict[int, Any]:
        query.declared_n = query.declared_n**self.exponent
        return self.inner.answer(query)


def far_probe_free_equivalent(
    algorithm: VolumeAlgorithm, id_exponent: int = 3
) -> VolumeAlgorithm:
    """A VOLUME algorithm equivalent to an LCA in the ``o(log* n)`` regime.

    For an algorithm that issues no far probes (every algorithm in this
    library), the only LCA advantage left is the ``1..n`` ID range; the
    §2.2 padding argument says running with the parameter ``n^k`` restores
    correctness for IDs from the polynomial range while keeping the probe
    complexity at ``T(n^k) = o(log* n)``.  For genuinely far-probing LCAs,
    Theorem 2.12's elimination is existential and out of executable scope.
    """
    return _RangePaddedAlgorithm(algorithm, id_exponent)
