"""The VOLUME and LCA probe models (Definitions 2.8–2.10, Theorem 4.1)."""

from repro.volume.model import (
    FunctionalVolumeAlgorithm,
    NodeTuple,
    ProbeOracle,
    VolumeAlgorithm,
    VolumeQuery,
    VolumeResult,
    run_volume_algorithm,
)
from repro.volume.algorithms import (
    ChainColeVishkin,
    ComponentCount,
    NeighborhoodAggregate,
)
from repro.volume.order_invariant import (
    check_volume_order_invariance,
    find_order_invariant_id_subset,
    fooled_constant_volume,
    smallest_volume_n0,
)
from repro.volume.lca import LCAOracle, far_probe_free_equivalent

__all__ = [
    "FunctionalVolumeAlgorithm",
    "NodeTuple",
    "ProbeOracle",
    "VolumeAlgorithm",
    "VolumeQuery",
    "VolumeResult",
    "run_volume_algorithm",
    "ChainColeVishkin",
    "ComponentCount",
    "NeighborhoodAggregate",
    "check_volume_order_invariance",
    "find_order_invariant_id_subset",
    "fooled_constant_volume",
    "smallest_volume_n0",
    "LCAOracle",
    "far_probe_free_equivalent",
]
