"""Graph substrate: port-numbered half-edge graphs, generators, balls, IDs."""

from repro.graphs.core import Graph, HalfEdge, HalfEdgeLabeling
from repro.graphs.balls import Ball, extract_ball
from repro.graphs.generators import (
    caterpillar,
    complete_regular_tree,
    cycle,
    disjoint_union,
    path,
    random_forest,
    random_tree,
    skip_list_graph,
    spider,
    star,
)
from repro.graphs.ids import (
    adversarial_ids,
    random_ids,
    sequential_ids,
)

__all__ = [
    "Graph",
    "HalfEdge",
    "HalfEdgeLabeling",
    "Ball",
    "extract_ball",
    "path",
    "cycle",
    "star",
    "spider",
    "caterpillar",
    "complete_regular_tree",
    "random_tree",
    "random_forest",
    "disjoint_union",
    "skip_list_graph",
    "sequential_ids",
    "random_ids",
    "adversarial_ids",
]
