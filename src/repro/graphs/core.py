"""Port-numbered half-edge graphs.

The paper's models (Definitions 2.1, 2.9, 5.2) all operate on simple
constant-degree graphs in which

* every node ``v`` has ports ``0 .. deg(v)-1`` giving a total order on its
  incident edges (the paper numbers ports from 1; we use 0-based ports
  everywhere and document it), and
* problems label *half-edges*: pairs ``(v, e)`` of a node and an incident
  edge, which under port numbering we represent as ``(v, port)``.

:class:`Graph` is a static, validated structure; node identities are the
integers ``0 .. n-1`` ("indices"), and the LOCAL model's globally unique
identifiers are a separate assignment (see :mod:`repro.graphs.ids`), so the
same topology can be re-identified without rebuilding.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError, LabelingError

#: A half-edge: ``(node index, port number)``.
HalfEdge = Tuple[int, int]


class Graph:
    """An undirected simple graph with port numbering.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are ``0 .. num_nodes - 1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Ports are assigned per node in the
        order edges are listed (first edge mentioning ``u`` gets ``u``'s
        port 0, and so on).
    """

    __slots__ = ("num_nodes", "_ports", "_edge_list")

    def __init__(self, num_nodes: int, edges: Iterable[Tuple[int, int]] = ()):
        if num_nodes < 0:
            raise GraphError("num_nodes must be non-negative")
        self.num_nodes = num_nodes
        # _ports[v][p] = (u, q): v's port p attaches to u's port q.
        self._ports: List[List[Tuple[int, int]]] = [[] for _ in range(num_nodes)]
        self._edge_list: List[Tuple[int, int, int, int]] = []  # (u, pu, v, pv), u < v
        seen: set[Tuple[int, int]] = set()
        for u, v in edges:
            self._add_edge(u, v, seen)

    @classmethod
    def from_port_map(
        cls, ports: Sequence[Sequence[Tuple[int, int]]]
    ) -> "Graph":
        """Build a graph from an explicit port map.

        ``ports[v][p] = (u, q)`` means ``v``'s port ``p`` attaches to
        ``u``'s port ``q``.  Needed when a subgraph must preserve the port
        numbering of its host graph (the Lemma 3.3 small-component case),
        where insertion-order port assignment would renumber ports.
        """
        graph = cls(len(ports))
        for v, entries in enumerate(ports):
            graph._ports[v] = [tuple(entry) for entry in entries]
        seen: set = set()
        for v, entries in enumerate(ports):
            for p, (u, q) in enumerate(entries):
                if not (0 <= u < len(ports)):
                    raise GraphError(f"port ({v}, {p}) references missing node {u}")
                if u == v:
                    raise GraphError(f"self-loop at node {v}")
                try:
                    back = ports[u][q]
                except IndexError:
                    raise GraphError(f"port ({v}, {p}) names a missing remote port") from None
                if tuple(back) != (v, p):
                    raise GraphError(f"asymmetric port map at ({v}, {p})")
                edge_key = (min((v, p), (u, q)), max((v, p), (u, q)))
                if edge_key in seen:
                    continue
                seen.add(edge_key)
                if v < u:
                    graph._edge_list.append((v, p, u, q))
                else:
                    graph._edge_list.append((u, q, v, p))
        return graph

    def _add_edge(self, u: int, v: int, seen: set) -> None:
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise GraphError(f"edge ({u}, {v}) references a missing node")
        if u == v:
            raise GraphError(f"self-loop at node {u} is not allowed")
        key = (min(u, v), max(u, v))
        if key in seen:
            raise GraphError(f"duplicate edge ({u}, {v})")
        seen.add(key)
        pu, pv = len(self._ports[u]), len(self._ports[v])
        self._ports[u].append((v, pv))
        self._ports[v].append((u, pu))
        a, b = key
        if a == u:
            self._edge_list.append((u, pu, v, pv))
        else:
            self._edge_list.append((v, pv, u, pu))

    # ------------------------------------------------------------------ views
    def degree(self, v: int) -> int:
        """Number of incident edges of node ``v``."""
        return len(self._ports[v])

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""
        return max((len(p) for p in self._ports), default=0)

    @property
    def num_edges(self) -> int:
        return len(self._edge_list)

    def neighbor(self, v: int, port: int) -> int:
        """The node attached to ``v``'s given port."""
        return self._port_entry(v, port)[0]

    def neighbor_port(self, v: int, port: int) -> int:
        """The *remote* port: which port of the neighbor this edge uses."""
        return self._port_entry(v, port)[1]

    def _port_entry(self, v: int, port: int) -> Tuple[int, int]:
        try:
            return self._ports[v][port]
        except IndexError:
            raise GraphError(f"node {v} has no port {port}") from None

    def neighbors(self, v: int) -> List[int]:
        """Neighbors of ``v`` in port order."""
        return [u for u, _ in self._ports[v]]

    def half_edges(self) -> Iterator[HalfEdge]:
        """All half-edges ``(v, port)`` of the graph."""
        for v in range(self.num_nodes):
            for port in range(self.degree(v)):
                yield (v, port)

    def edges(self) -> Iterator[Tuple[int, int, int, int]]:
        """All edges as ``(u, pu, v, pv)`` with ``u < v``."""
        return iter(self._edge_list)

    def opposite(self, half_edge: HalfEdge) -> HalfEdge:
        """The half-edge at the other end of the same edge."""
        v, port = half_edge
        u, q = self._port_entry(v, port)
        return (u, q)

    def port_to(self, v: int, u: int) -> Optional[int]:
        """The port of ``v`` leading to ``u``, or ``None`` if not adjacent."""
        for port, (w, _) in enumerate(self._ports[v]):
            if w == u:
                return port
        return None

    def connected_components(self) -> List[List[int]]:
        """Connected components as sorted lists of node indices."""
        seen = [False] * self.num_nodes
        components: List[List[int]] = []
        for start in range(self.num_nodes):
            if seen[start]:
                continue
            stack, component = [start], []
            seen[start] = True
            while stack:
                v = stack.pop()
                component.append(v)
                for u in self.neighbors(v):
                    if not seen[u]:
                        seen[u] = True
                        stack.append(u)
            components.append(sorted(component))
        return components

    def is_forest(self) -> bool:
        """True iff the graph is acyclic."""
        return self.num_edges == self.num_nodes - len(self.connected_components())

    def is_tree(self) -> bool:
        """True iff the graph is connected and acyclic."""
        return self.is_forest() and len(self.connected_components()) <= 1

    def bfs_distances(self, source: int, limit: Optional[int] = None) -> Dict[int, int]:
        """Hop distances from ``source``; restricted to ``<= limit`` if given."""
        dist = {source: 0}
        frontier = [source]
        radius = 0
        while frontier and (limit is None or radius < limit):
            radius += 1
            next_frontier = []
            for v in frontier:
                for u in self.neighbors(v):
                    if u not in dist:
                        dist[u] = radius
                        next_frontier.append(u)
            frontier = next_frontier
        return dist

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


class HalfEdgeLabeling:
    """A total or partial labeling of a graph's half-edges.

    This is the ``f_in`` / ``f_out`` of Definition 2.2.  Instances are
    mutable mappings from half-edges to labels, validated against their
    graph.
    """

    __slots__ = ("graph", "_labels")

    def __init__(self, graph: Graph, labels: Optional[Dict[HalfEdge, Any]] = None):
        self.graph = graph
        self._labels: Dict[HalfEdge, Any] = {}
        if labels:
            for half_edge, label in labels.items():
                self[half_edge] = label

    # ------------------------------------------------------------ constructors
    @classmethod
    def constant(cls, graph: Graph, label: Any) -> "HalfEdgeLabeling":
        """Every half-edge gets the same label."""
        return cls(graph, {h: label for h in graph.half_edges()})

    @classmethod
    def from_node_labels(cls, graph: Graph, node_labels: Sequence[Any]) -> "HalfEdgeLabeling":
        """Each node's label copied onto all of its half-edges.

        This is how node-labeling problems (colorings, MIS, ...) embed into
        the half-edge formalism.
        """
        if len(node_labels) != graph.num_nodes:
            raise LabelingError("need exactly one label per node")
        return cls(
            graph,
            {(v, p): node_labels[v] for v in range(graph.num_nodes) for p in range(graph.degree(v))},
        )

    @classmethod
    def from_edge_labels(
        cls, graph: Graph, edge_labels: Dict[Tuple[int, int], Any]
    ) -> "HalfEdgeLabeling":
        """Each edge's label copied onto both of its half-edges.

        ``edge_labels`` is keyed by unordered node pairs given as ``(u, v)``.
        """
        labeling = cls(graph)
        for (u, v), label in edge_labels.items():
            pu = graph.port_to(u, v)
            if pu is None:
                raise LabelingError(f"({u}, {v}) is not an edge")
            pv = graph.neighbor_port(u, pu)
            labeling[(u, pu)] = label
            labeling[(v, pv)] = label
        return labeling

    # ------------------------------------------------------------ mapping api
    def _check(self, half_edge: HalfEdge) -> None:
        v, port = half_edge
        if not (0 <= v < self.graph.num_nodes and 0 <= port < self.graph.degree(v)):
            raise LabelingError(f"{half_edge} is not a half-edge of the graph")

    def __setitem__(self, half_edge: HalfEdge, label: Any) -> None:
        self._check(half_edge)
        self._labels[half_edge] = label

    def __getitem__(self, half_edge: HalfEdge) -> Any:
        self._check(half_edge)
        return self._labels[half_edge]

    def get(self, half_edge: HalfEdge, default: Any = None) -> Any:
        return self._labels.get(half_edge, default)

    def __contains__(self, half_edge: HalfEdge) -> bool:
        return half_edge in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def items(self) -> Iterator[Tuple[HalfEdge, Any]]:
        return iter(self._labels.items())

    def is_total(self) -> bool:
        """True iff every half-edge of the graph is labeled."""
        return len(self._labels) == 2 * self.graph.num_edges

    def node_view(self, v: int) -> List[Any]:
        """Labels around node ``v`` in port order (``None`` where missing)."""
        return [self._labels.get((v, p)) for p in range(self.graph.degree(v))]

    def copy(self) -> "HalfEdgeLabeling":
        return HalfEdgeLabeling(self.graph, dict(self._labels))

    def label_set(self) -> frozenset:
        """The set of labels actually used."""
        return frozenset(self._labels.values())

    def __repr__(self) -> str:
        return f"HalfEdgeLabeling({len(self._labels)}/{2 * self.graph.num_edges} half-edges)"
