"""Identifier assignments for the LOCAL / VOLUME models.

Deterministic algorithms receive globally unique identifiers from a
polynomial range (Definition 2.1).  The assignment is adversarial in the
model, so tests and benchmarks exercise several schemes:

* :func:`sequential_ids` — ``1 .. n`` (what the LCA model assumes),
* :func:`random_ids` — a random injection into ``[1, n**exponent]``,
* :func:`adversarial_ids` — a worst-case-flavored assignment that sorts
  IDs against a caller-provided key (e.g. to break algorithms that
  accidentally rely on ID order correlating with topology).
"""

from __future__ import annotations

import logging
import random
from typing import Callable, List

from repro.exceptions import GraphError
from repro.graphs.core import Graph

logger = logging.getLogger(__name__)


def sequential_ids(graph: Graph) -> List[int]:
    """IDs ``1 .. n`` in node-index order."""
    return list(range(1, graph.num_nodes + 1))


def random_ids(graph: Graph, seed: int = 0, exponent: int = 3) -> List[int]:
    """Distinct random IDs from the polynomial range ``[1, n**exponent]``.

    Under an active ``adversarial_ids`` fault
    (:mod:`repro.utils.faults`), the assignment is silently replaced by
    a worst-case ordering (ID order = reverse node-index order) — the
    model's adversary choosing identifiers.  Algorithms must remain
    correct; chaos tests assert exactly that.
    """
    if exponent < 1:
        raise GraphError("exponent must be >= 1")
    from repro.utils import faults

    if faults.maybe_adversarial_ids():
        logger.warning("injecting adversarial_ids: reverse-ordered assignment")
        return adversarial_ids(graph, key=lambda v: -v, exponent=exponent)
    n = graph.num_nodes
    rng = random.Random(seed)
    universe = max(n, n**exponent)
    return rng.sample(range(1, universe + 1), n)


def adversarial_ids(
    graph: Graph, key: Callable[[int], float], exponent: int = 3
) -> List[int]:
    """Distinct IDs assigned so that ``key(v)`` order equals ID order.

    Nodes are ranked by ``key`` (ties broken by index) and the i-th ranked
    node receives the i-th smallest ID drawn from a stretched polynomial
    range, so that *relative order* is fully controlled by the caller.
    """
    n = graph.num_nodes
    ranked = sorted(range(n), key=lambda v: (key(v), v))
    stride = max(1, n ** (exponent - 1))
    ids = [0] * n
    for rank, v in enumerate(ranked):
        ids[v] = 1 + rank * stride
    return ids
