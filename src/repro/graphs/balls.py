"""Radius-T balls: the information a node sees in T rounds of LOCAL.

Definition 2.1 specifies exactly what a ``T``-round algorithm may depend
on: all nodes within distance ``T``, all edges with an endpoint within
distance ``T - 1``, and all half-edges of nodes within distance ``T``
(their ports, degrees and input labels) — plus identifiers or random bit
strings stored at the visible nodes.

:class:`Ball` captures this as a standalone structure with *local* node
indices assigned in canonical BFS order (distance first, then discovery
through ports in increasing order).  Because port numbers are part of the
model, this canonical order makes two balls port-isomorphic **iff** their
:meth:`Ball.signature` strings are equal — which is how we implement
order-invariance checks and 0-round function tables without a general
isomorphism search.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.graphs.core import Graph, HalfEdgeLabeling


class Ball:
    """The radius-``T`` view around a center node.

    Local node 0 is always the center.  ``adj[v][port]`` is
    ``(local neighbor, remote port)`` for edges *visible inside the ball*;
    ports of visible nodes whose edges leave the ball are present in
    ``degrees`` / ``inputs`` but absent from ``adj`` (the algorithm knows
    the half-edge exists but not where it leads).
    """

    __slots__ = (
        "radius",
        "global_index",
        "distance",
        "degrees",
        "ids",
        "inputs",
        "bits",
        "adj",
        "_local_of_global",
    )

    def __init__(self, radius: int):
        self.radius = radius
        self.global_index: List[int] = []
        self.distance: List[int] = []
        self.degrees: List[int] = []
        self.ids: List[Optional[int]] = []
        self.inputs: List[Tuple[Any, ...]] = []
        self.bits: List[Optional[str]] = []
        self.adj: List[Dict[int, Tuple[int, int]]] = []
        self._local_of_global: Dict[int, int] = {}

    # ------------------------------------------------------------- accessors
    @property
    def num_nodes(self) -> int:
        return len(self.global_index)

    def local_of_global(self, global_index: int) -> Optional[int]:
        return self._local_of_global.get(global_index)

    def center_degree(self) -> int:
        return self.degrees[0]

    def center_inputs(self) -> Tuple[Any, ...]:
        return self.inputs[0]

    def center_id(self) -> Optional[int]:
        return self.ids[0]

    def center_bits(self) -> Optional[str]:
        return self.bits[0]

    def neighbor(self, local: int, port: int) -> Optional[Tuple[int, int]]:
        """``(local neighbor, remote port)`` or ``None`` beyond the horizon."""
        return self.adj[local].get(port)

    def nodes_at_distance(self, d: int) -> List[int]:
        return [v for v in range(self.num_nodes) if self.distance[v] == d]

    def id_rank(self, local: int) -> int:
        """Rank of the node's ID among all IDs in the ball (0 = smallest).

        Order-invariant algorithms (Definition 2.7) may depend on IDs only
        through these ranks.
        """
        my_id = self.ids[local]
        if my_id is None:
            raise ValueError("ball carries no identifiers")
        return sum(1 for other in self.ids if other is not None and other < my_id)

    # ------------------------------------------------------------- signature
    def signature(
        self,
        ids: str = "exact",
        include_bits: bool = True,
    ) -> Tuple:
        """A canonical, hashable fingerprint of the ball.

        ``ids``:
          * ``"exact"`` — include raw identifiers,
          * ``"rank"``  — include only the relative order of identifiers
            (two balls that are order-indistinguishable in the sense of
            Definition 2.7 get equal rank-signatures),
          * ``"none"``  — drop identifiers entirely.
        """
        if ids not in ("exact", "rank", "none"):
            raise ValueError(f"unknown ids mode: {ids!r}")
        rows = []
        for v in range(self.num_nodes):
            if ids == "exact":
                identity: Any = self.ids[v]
            elif ids == "rank":
                identity = self.id_rank(v) if self.ids[v] is not None else None
            else:
                identity = None
            adjacency = tuple(
                self.adj[v].get(port) for port in range(self.degrees[v])
            )
            rows.append(
                (
                    self.distance[v],
                    self.degrees[v],
                    self.inputs[v],
                    identity,
                    self.bits[v] if include_bits else None,
                    adjacency,
                )
            )
        return (self.radius, tuple(rows))

    def __repr__(self) -> str:
        return f"Ball(radius={self.radius}, num_nodes={self.num_nodes})"


def extract_ball(
    graph: Graph,
    center: int,
    radius: int,
    input_labeling: Optional[HalfEdgeLabeling] = None,
    ids: Optional[List[int]] = None,
    bits: Optional[List[str]] = None,
) -> Ball:
    """Extract the Definition-2.1 radius-``radius`` ball around ``center``.

    ``ids`` and ``bits`` are per-(global)-node assignments; either may be
    omitted when the corresponding information is not part of the model
    variant being simulated.
    """
    ball = Ball(radius)

    def admit(global_v: int, d: int) -> int:
        local = ball.num_nodes
        ball.global_index.append(global_v)
        ball.distance.append(d)
        ball.degrees.append(graph.degree(global_v))
        ball.ids.append(None if ids is None else ids[global_v])
        ball.inputs.append(
            tuple(
                input_labeling.get((global_v, p)) if input_labeling is not None else None
                for p in range(graph.degree(global_v))
            )
        )
        ball.bits.append(None if bits is None else bits[global_v])
        ball.adj.append({})
        ball._local_of_global[global_v] = local
        return local

    admit(center, 0)
    queue = deque([0])
    while queue:
        local_v = queue.popleft()
        d = ball.distance[local_v]
        if d >= radius:
            # Edges between two distance-`radius` nodes (or leaving the
            # ball) are invisible per Definition 2.1.
            continue
        global_v = ball.global_index[local_v]
        for port in range(graph.degree(global_v)):
            global_u = graph.neighbor(global_v, port)
            remote_port = graph.neighbor_port(global_v, port)
            local_u = ball._local_of_global.get(global_u)
            if local_u is None:
                local_u = admit(global_u, d + 1)
                queue.append(local_u)
            ball.adj[local_v][port] = (local_u, remote_port)
            ball.adj[local_u][remote_port] = (local_v, port)
    return ball
