"""Graph generators for the paper's graph classes.

Everything here produces :class:`~repro.graphs.core.Graph` instances:
paths and cycles (the decidability fragment of §1.4), bounded-degree trees
and forests (the class ``T`` / ``F`` of §2), and the skip-list shortcut
graphs used to exhibit the "dense region" of complexities between
``Θ(log log* n)`` and ``Θ(log* n)`` on general graphs (§1, discussion of
[11]).  Oriented grids live in :mod:`repro.grids.oriented` because they
carry extra structure (coordinates, orientations).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.core import Graph


def path(num_nodes: int) -> Graph:
    """A path on ``num_nodes`` nodes (0 - 1 - ... - n-1)."""
    return Graph(num_nodes, [(i, i + 1) for i in range(num_nodes - 1)])


def cycle(num_nodes: int) -> Graph:
    """A cycle on ``num_nodes >= 3`` nodes."""
    if num_nodes < 3:
        raise GraphError("a simple cycle needs at least 3 nodes")
    edges = [(i, i + 1) for i in range(num_nodes - 1)] + [(num_nodes - 1, 0)]
    return Graph(num_nodes, edges)


def star(num_leaves: int) -> Graph:
    """A star: node 0 adjacent to ``num_leaves`` leaves."""
    return Graph(num_leaves + 1, [(0, i) for i in range(1, num_leaves + 1)])


def spider(num_legs: int, leg_length: int) -> Graph:
    """A spider: ``num_legs`` paths of ``leg_length`` edges glued at node 0."""
    edges: List[Tuple[int, int]] = []
    next_index = 1
    for _ in range(num_legs):
        previous = 0
        for _ in range(leg_length):
            edges.append((previous, next_index))
            previous = next_index
            next_index += 1
    return Graph(next_index, edges)


def caterpillar(spine_length: int, legs_per_node: int = 1) -> Graph:
    """A caterpillar: a spine path with pendant leaves on every spine node."""
    edges = [(i, i + 1) for i in range(spine_length - 1)]
    next_index = spine_length
    for v in range(spine_length):
        for _ in range(legs_per_node):
            edges.append((v, next_index))
            next_index += 1
    return Graph(next_index, edges)


def complete_regular_tree(delta: int, depth: int) -> Graph:
    """The complete Δ-regular tree of the given depth.

    The root has ``delta`` children; every internal node has ``delta - 1``
    children (so internal degrees are exactly Δ); leaves are at ``depth``.
    ``depth == 0`` yields a single node.
    """
    if delta < 2:
        raise GraphError("complete_regular_tree needs delta >= 2")
    edges: List[Tuple[int, int]] = []
    frontier = [0]
    next_index = 1
    for level in range(depth):
        new_frontier = []
        for v in frontier:
            fanout = delta if level == 0 else delta - 1
            for _ in range(fanout):
                edges.append((v, next_index))
                new_frontier.append(next_index)
                next_index += 1
        frontier = new_frontier
    return Graph(next_index, edges)


def random_tree(num_nodes: int, max_degree: int, seed: int = 0) -> Graph:
    """A uniform-ish random tree with maximum degree at most ``max_degree``.

    Built by random attachment: node ``i`` attaches to a uniformly random
    earlier node that still has spare degree.  This covers irregular trees
    with all degrees ``1 .. Δ``, which is exactly the generality the
    paper's round elimination extension addresses.
    """
    if num_nodes < 1:
        raise GraphError("random_tree needs at least one node")
    if num_nodes > 1 and max_degree < 2:
        raise GraphError("max_degree must be >= 2 for a tree with >= 2 nodes")
    rng = random.Random(seed)
    degrees = [0] * num_nodes
    edges: List[Tuple[int, int]] = []
    available: List[int] = [0]
    for v in range(1, num_nodes):
        u = rng.choice(available)
        edges.append((u, v))
        degrees[u] += 1
        degrees[v] += 1
        if degrees[u] >= max_degree:
            available.remove(u)
        if degrees[v] < max_degree:
            available.append(v)
        if not available:
            raise GraphError("degree budget exhausted; increase max_degree")
    return Graph(num_nodes, edges)


def random_forest(
    component_sizes: Sequence[int], max_degree: int, seed: int = 0
) -> Graph:
    """A forest whose components are random trees of the given sizes."""
    trees = [
        random_tree(size, max_degree, seed=seed + 7919 * i)
        for i, size in enumerate(component_sizes)
    ]
    return disjoint_union(trees)


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """The disjoint union of the given graphs (indices shifted)."""
    edges: List[Tuple[int, int]] = []
    offset = 0
    for g in graphs:
        for u, _, v, _ in g.edges():
            edges.append((u + offset, v + offset))
        offset += g.num_nodes
    return Graph(offset, edges)


def skip_list_graph(num_nodes: int, levels: Optional[int] = None) -> Graph:
    """A path plus deterministic skip-list shortcuts.

    Node ``i`` is additionally joined to ``i + 2**j`` whenever
    ``i % 2**j == 0``, for ``1 <= j <= levels``.  A radius-``t`` ball in
    this graph contains a ``2^Θ(t)``-radius ball of the underlying path, so
    path problems of locality ``Θ(log* n)`` become solvable with locality
    ``Θ(log log* n)`` here — the mechanism behind the dense region of
    complexities on general graphs ([11], discussed in §1).

    The max degree grows with ``levels`` (≈ ``2 + 2*levels``); the paper's
    construction keeps degrees constant at the cost of a much more
    intricate gadget.  See DESIGN.md (substitutions) for why this is an
    acceptable stand-in for landscape-shape experiments.
    """
    if num_nodes < 2:
        raise GraphError("skip_list_graph needs at least 2 nodes")
    if levels is None:
        levels = max(1, (num_nodes - 1).bit_length() - 1)
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    for j in range(1, levels + 1):
        step = 1 << j
        for i in range(0, num_nodes - step, step):
            edges.append((i, i + step))
    return Graph(num_nodes, edges)
