"""Memoization store and instrumentation for the round-elimination engine.

The ``R`` / ``R̄`` operators and the ``simplify`` hygiene pass are pure
functions of their input problem (Definitions 3.1 / 3.2 quantify over
fixed finite sets; every loop in :mod:`repro.roundelim.ops` iterates in a
deterministic canonical order), so their results can be cached keyed by
*what the problem is* rather than *how its labels are spelled*:

    key = (operator, canonical_hash(problem), flags)

with the canonical hash of :mod:`repro.roundelim.canonical` and ``flags``
encoding the operator options (``max_universe``, ``universe_mode``,
``domination``).  Values are the spelling-independent payloads of
:func:`repro.roundelim.canonical.encode_result`, decoded on every hit
against the concrete query problem — a hit for an isomorphic-but-renamed
problem yields the correctly relabeled result.

Layers
------
* an in-memory LRU (default :data:`DEFAULT_MEMORY_ENTRIES` entries),
* an optional on-disk store: one JSON file per entry under
  ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro`` when enabled
  programmatically), written atomically via ``os.replace``.  Corrupt or
  mismatched files are deleted and counted as misses — a poisoned cache
  degrades to recomputation, never to a crash or a wrong result.

Environment knobs
-----------------
``REPRO_CACHE=0``            disable caching entirely (compute everything).
``REPRO_CACHE_DIR=…``        enable the on-disk layer at the given directory.
``REPRO_CACHE_MAX_BYTES=…``  bound the on-disk layer; least-recently-used
entries (by file mtime) are evicted once the total size exceeds the
bound, and evictions are counted in ``stats()["cache"]["disk_evictions"]``.

Instrumentation
---------------
Per-operator counters (cache hits/misses, kernel executions,
configurations tested, wall time) accumulate process-wide regardless of
whether caching is enabled; read them with :func:`stats`, render them
with :func:`format_stats`, reset with :func:`reset_stats`.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from collections import OrderedDict
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.utils import env, faults

logger = logging.getLogger(__name__)

DEFAULT_MEMORY_ENTRIES = 1024

#: Counter fields tracked per operator.  The last block is maintained by
#: the hardened worker pools of :mod:`repro.roundelim.ops`.
STAT_FIELDS = (
    "hits",
    "misses",
    "computes",
    "stores",
    "disk_hits",
    "disk_errors",
    "decode_errors",
    "configurations_tested",
    "wall_time",
    "pool_fallbacks",
    "chunk_retries",
    "chunk_timeouts",
    "chunk_failures",
    "serial_rescues",
    # Maintained by the compiled bitset backend dispatch (REPRO_BITSET):
    # steps served by the numpy kernels vs. declined-to-oracle fallbacks.
    "bitset_steps",
    "bitset_fallbacks",
    # Maintained by the SAT decision-kernel dispatch (REPRO_SAT): decisions
    # served by the CNF engine vs. declined-to-enumeration fallbacks.
    "sat_steps",
    "sat_fallbacks",
)

_ENV_DISABLE = "REPRO_CACHE"
_ENV_DISK_DIR = "REPRO_CACHE_DIR"
_ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

_lock = threading.Lock()
_stats: Dict[str, Dict[str, float]] = {}


def _new_counters() -> Dict[str, float]:
    counters: Dict[str, float] = {field: 0 for field in STAT_FIELDS}
    counters["wall_time"] = 0.0
    return counters


def record(operator: str, **increments: float) -> None:
    """Add to the named operator's counters (unknown fields rejected)."""
    with _lock:
        counters = _stats.setdefault(operator, _new_counters())
        for field, amount in increments.items():
            if field not in counters:
                raise KeyError(f"unknown stat field {field!r}")
            counters[field] += amount


def reset_stats() -> None:
    """Zero all per-operator counters."""
    with _lock:
        _stats.clear()


def stats() -> Dict[str, Any]:
    """A snapshot: per-operator counters plus cache configuration."""
    with _lock:
        operators = {name: dict(counters) for name, counters in _stats.items()}
    cache = get_cache()
    return {
        "operators": operators,
        "cache": {
            "enabled": cache.enabled,
            "memory_entries": len(cache),
            "memory_capacity": cache.memory_entries,
            "disk_dir": str(cache.disk_dir) if cache.disk_dir else None,
            "max_disk_bytes": cache.max_disk_bytes,
            "disk_evictions": cache.disk_evictions,
        },
    }


def hit_rate(operator: Optional[str] = None) -> Optional[float]:
    """``hits / (hits + misses)`` for one operator (or all combined);
    ``None`` when no cached operator ran at all."""
    snapshot = stats()["operators"]
    if operator is not None:
        snapshot = {operator: snapshot.get(operator, _new_counters())}
    hits = sum(c["hits"] for c in snapshot.values())
    misses = sum(c["misses"] for c in snapshot.values())
    total = hits + misses
    return None if total == 0 else hits / total


def format_stats() -> str:
    """Human-readable counter table (used by the CLI and benchmarks)."""
    snapshot = stats()
    lines = []
    cache_info = snapshot["cache"]
    state = "enabled" if cache_info["enabled"] else "disabled"
    disk = cache_info["disk_dir"] or "off"
    lines.append(
        f"cache: {state}  entries={cache_info['memory_entries']}"
        f"/{cache_info['memory_capacity']}  disk={disk}"
    )
    if cache_info["max_disk_bytes"] is not None:
        lines.append(
            f"  disk budget: {cache_info['max_disk_bytes']} bytes, "
            f"{cache_info['disk_evictions']} evictions"
        )
    header = (
        f"  {'operator':<10} {'hits':>6} {'misses':>7} {'computes':>9} "
        f"{'configs':>9} {'wall[s]':>8}"
    )
    lines.append(header)
    for name in sorted(snapshot["operators"]):
        c = snapshot["operators"][name]
        lines.append(
            f"  {name:<10} {int(c['hits']):>6} {int(c['misses']):>7} "
            f"{int(c['computes']):>9} {int(c['configurations_tested']):>9} "
            f"{c['wall_time']:>8.3f}"
        )
        robustness = {
            field: int(c[field])
            for field in (
                "pool_fallbacks",
                "chunk_retries",
                "chunk_timeouts",
                "chunk_failures",
                "serial_rescues",
                "bitset_fallbacks",
                "sat_fallbacks",
            )
            if c.get(field)
        }
        if robustness:
            detail = " ".join(f"{k}={v}" for k, v in robustness.items())
            lines.append(f"  {'':<10} !! {detail}")
        engines = {
            field: int(c[field])
            for field in ("bitset_steps", "sat_steps")
            if c.get(field)
        }
        if engines:
            detail = " ".join(f"{k}={v}" for k, v in engines.items())
            lines.append(f"  {'':<10} engine: {detail}")
    rate = hit_rate()
    lines.append(
        "  overall hit rate: "
        + ("n/a" if rate is None else f"{rate:.1%}")
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------- store
class RoundElimCache:
    """LRU payload store with an optional on-disk JSON layer.

    Keys are ``(operator, canonical_hash, flags)`` string triples; values
    are JSON-able payload dicts.  The store never interprets payloads —
    decoding (and its failure handling) belongs to the caller.
    """

    def __init__(
        self,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        disk_dir: Optional[os.PathLike] = None,
        enabled: bool = True,
        max_disk_bytes: Optional[int] = None,
    ):
        self.memory_entries = max(1, int(memory_entries))
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self.enabled = enabled
        self.max_disk_bytes = (
            max(0, int(max_disk_bytes)) if max_disk_bytes is not None else None
        )
        #: Disk entries removed to honor ``max_disk_bytes`` (process-lifetime).
        self.disk_evictions = 0
        self._memory: "OrderedDict[Tuple[str, str, str], dict]" = OrderedDict()
        self._lock = threading.Lock()
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    # -- keys ---------------------------------------------------------------
    @staticmethod
    def _disk_name(key: Tuple[str, str, str]) -> str:
        operator, problem_hash, flags = key
        digest = sha256(f"{operator}\x00{problem_hash}\x00{flags}".encode()).hexdigest()
        return f"{operator}-{digest[:40]}.json"

    def _disk_path(self, key: Tuple[str, str, str]) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / self._disk_name(key)

    # -- operations ---------------------------------------------------------
    def get(self, key: Tuple[str, str, str], stat_key: Optional[str] = None) -> Optional[dict]:
        """Look up a payload; promotes disk hits into memory.

        Any disk-layer failure (unreadable JSON, key mismatch from a
        digest collision, truncated file) deletes the offending file,
        bumps ``disk_errors``, and reads as a miss.
        """
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                return payload
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        raw = faults.corrupt_text("cache_corrupt", raw)
        try:
            entry = json.loads(raw)
            if entry.get("key") != list(key):
                raise ValueError("cache entry key mismatch")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not an object")
        except (ValueError, KeyError, TypeError):
            logger.warning(
                "corrupt cache entry %s: deleting and recomputing", path.name
            )
            if stat_key:
                record(stat_key, disk_errors=1)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if stat_key:
            record(stat_key, disk_hits=1)
        with self._lock:
            self._memory[key] = payload
            self._memory.move_to_end(key)
            self._evict_locked()
        return payload

    def put(self, key: Tuple[str, str, str], payload: dict) -> None:
        with self._lock:
            self._memory[key] = payload
            self._memory.move_to_end(key)
            self._evict_locked()
        path = self._disk_path(key)
        if path is None:
            return
        entry = {"key": list(key), "payload": payload}
        try:
            text = json.dumps(entry, separators=(",", ":"), sort_keys=True)
            tmp = path.with_name(path.name + f".tmp{os.getpid()}")
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            # Disk persistence is best-effort; memory already holds the entry.
            try:
                tmp.unlink()
            except (OSError, UnboundLocalError):
                pass
        else:
            self._enforce_disk_budget(keep=path.name)

    def _enforce_disk_budget(self, keep: Optional[str] = None) -> None:
        """Evict least-recently-used disk entries (by mtime) until the
        layer fits in ``max_disk_bytes``.  The just-written entry
        (``keep``) is evicted only if it alone exceeds the whole budget."""
        if self.max_disk_bytes is None or self.disk_dir is None:
            return
        try:
            entries = []
            total = 0
            for path in self.disk_dir.glob("*.json"):
                stat = path.stat()
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        except OSError:
            return
        if total <= self.max_disk_bytes:
            return
        entries.sort()
        for _, size, path in entries:
            if total <= self.max_disk_bytes:
                break
            if keep is not None and path.name == keep and len(entries) > 1:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.disk_evictions += 1
            logger.info("evicted cache entry %s (%d bytes) for disk budget", path.name, size)

    def invalidate(self, key: Tuple[str, str, str]) -> None:
        with self._lock:
            self._memory.pop(key, None)
        path = self._disk_path(key)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass

    def clear(self, disk: bool = False) -> None:
        """Drop all memory entries (and, optionally, the disk files)."""
        with self._lock:
            self._memory.clear()
        if disk and self.disk_dir is not None:
            for path in self.disk_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def _evict_locked(self) -> None:
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)


# ----------------------------------------------------------------- global API
_cache: Optional[RoundElimCache] = None
_UNSET = object()


def _build_from_env() -> RoundElimCache:
    enabled = env.get_bool(_ENV_DISABLE)
    disk_dir = env.get_str(_ENV_DISK_DIR)
    max_disk_bytes = env.get_int(_ENV_MAX_BYTES)
    return RoundElimCache(
        disk_dir=disk_dir, enabled=enabled, max_disk_bytes=max_disk_bytes
    )


def get_cache() -> RoundElimCache:
    """The process-wide operator cache (built lazily from the environment)."""
    global _cache
    if _cache is None:
        _cache = _build_from_env()
    return _cache


def configure(
    enabled: Optional[bool] = None,
    memory_entries: Optional[int] = None,
    disk_dir: Any = _UNSET,
    max_disk_bytes: Any = _UNSET,
) -> RoundElimCache:
    """Reconfigure the global cache in place; omitted arguments keep
    their current values.  ``disk_dir=None`` turns the disk layer off;
    ``disk_dir=True`` selects ``~/.cache/repro``; ``max_disk_bytes=None``
    removes the disk-size bound."""
    global _cache
    current = get_cache()
    if disk_dir is _UNSET:
        new_disk = current.disk_dir
    elif disk_dir is True:
        new_disk = Path.home() / ".cache" / "repro"
    else:
        new_disk = Path(disk_dir) if disk_dir else None
    _cache = RoundElimCache(
        memory_entries=(
            current.memory_entries if memory_entries is None else memory_entries
        ),
        disk_dir=new_disk,
        enabled=current.enabled if enabled is None else enabled,
        max_disk_bytes=(
            current.max_disk_bytes if max_disk_bytes is _UNSET else max_disk_bytes
        ),
    )
    return _cache


def reset() -> None:
    """Forget the global cache so the next call rebuilds from the
    environment (used by tests that monkeypatch ``REPRO_*`` variables)."""
    global _cache
    _cache = None
