"""Number-theoretic helpers: log*, primes, power towers, GF(q) polynomials.

These back two parts of the reproduction:

* ``iterated_log`` / ``tower`` — the complexity landscape is phrased in
  terms of ``log* n``; the failure-bound calculator of Theorem 3.4 needs
  power towers (condition (3.3) involves a tower of height ``2T + 3``).
* primes and :class:`GFPolynomial` — Linial's O(log* n) color reduction
  encodes colors as low-degree polynomials over a finite field GF(q) and
  recolors each node by a point ``(x, p(x))`` on which it differs from all
  neighbors.  Only prime fields are needed.
"""

from __future__ import annotations

import math
from typing import Sequence


def iterated_log(n: float, base: float = 2.0) -> int:
    """log*(n): how many times ``log`` must be applied before the value <= 1.

    >>> [iterated_log(x) for x in (1, 2, 4, 16, 65536)]
    [0, 1, 2, 3, 4]
    """
    if n <= 1:
        return 0
    count = 0
    value = float(n)
    while value > 1:
        value = math.log(value, base)
        count += 1
    return count


def tower(height: int, top: float = 2.0, base: float = 2.0) -> float:
    """A power tower ``base^base^...^top`` of the given height.

    ``tower(0, t) == t``.  Returns ``math.inf`` on overflow, which is the
    honest answer for the n0 bounds of Theorem 3.10.
    """
    if height < 0:
        raise ValueError("tower height must be non-negative")
    value = float(top)
    for _ in range(height):
        try:
            value = base**value
        except OverflowError:
            return math.inf
        if value == math.inf:
            return math.inf
    return value


def is_prime(n: int) -> bool:
    """Deterministic primality test (trial division; inputs here are small)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def next_prime(n: int) -> int:
    """The smallest prime >= n."""
    candidate = max(2, n)
    while not is_prime(candidate):
        candidate += 1
    return candidate


class GFPolynomial:
    """A polynomial over the prime field GF(q), evaluated by Horner's rule.

    Coefficients are given lowest-degree first, reduced mod q.
    """

    __slots__ = ("q", "coefficients")

    def __init__(self, q: int, coefficients: Sequence[int]):
        if not is_prime(q):
            raise ValueError(f"GF({q}) requires a prime modulus")
        self.q = q
        self.coefficients = tuple(c % q for c in coefficients)

    @classmethod
    def from_integer(cls, q: int, value: int, degree: int) -> "GFPolynomial":
        """Encode ``value`` in base q as a polynomial of the given degree.

        Distinct values in ``range(q ** (degree + 1))`` map to distinct
        polynomials, which is exactly the injectivity Linial's recoloring
        needs.
        """
        if value < 0:
            raise ValueError("value must be non-negative")
        if value >= q ** (degree + 1):
            raise ValueError(
                f"value {value} does not fit in degree-{degree} polynomial over GF({q})"
            )
        coefficients = []
        for _ in range(degree + 1):
            coefficients.append(value % q)
            value //= q
        return cls(q, coefficients)

    def __call__(self, x: int) -> int:
        result = 0
        for c in reversed(self.coefficients):
            result = (result * x + c) % self.q
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GFPolynomial):
            return NotImplemented
        return self.q == other.q and self.coefficients == other.coefficients

    def __hash__(self) -> int:
        return hash((self.q, self.coefficients))

    def __repr__(self) -> str:
        return f"GFPolynomial(q={self.q}, coefficients={self.coefficients})"
