"""Shared utilities: canonical multisets, number theory, log*, RNG helpers."""

from repro.utils.multiset import Multiset
from repro.utils.numbers import (
    GFPolynomial,
    iterated_log,
    is_prime,
    next_prime,
    tower,
)
from repro.utils.rng import SplittableRNG, derive_seed

__all__ = [
    "Multiset",
    "GFPolynomial",
    "iterated_log",
    "is_prime",
    "next_prime",
    "tower",
    "SplittableRNG",
    "derive_seed",
]
