"""Shared utilities: canonical multisets, number theory, log*, RNG
helpers, and the round-elimination operator cache (:mod:`repro.utils.cache`)."""

from repro.utils.cache import RoundElimCache, configure, format_stats, hit_rate, reset_stats, stats
from repro.utils.multiset import Multiset
from repro.utils.numbers import (
    GFPolynomial,
    iterated_log,
    is_prime,
    next_prime,
    tower,
)
from repro.utils.rng import SplittableRNG, derive_seed

__all__ = [
    "Multiset",
    "RoundElimCache",
    "configure",
    "format_stats",
    "hit_rate",
    "reset_stats",
    "stats",
    "GFPolynomial",
    "iterated_log",
    "is_prime",
    "next_prime",
    "tower",
    "SplittableRNG",
    "derive_seed",
]
