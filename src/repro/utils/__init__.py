"""Shared utilities: canonical multisets, number theory, log*, RNG
helpers, the round-elimination operator cache (:mod:`repro.utils.cache`),
cooperative resource budgets (:mod:`repro.utils.budget`), and the
deterministic fault-injection harness (:mod:`repro.utils.faults`)."""

from repro.utils import env
from repro.utils.budget import Budget, BudgetDiagnostics, active_budget
from repro.utils.cache import RoundElimCache, configure, format_stats, hit_rate, reset_stats, stats
from repro.utils.faults import FaultPlan, InjectedFault, configure_faults, reset_faults
from repro.utils.multiset import Multiset
from repro.utils.numbers import (
    GFPolynomial,
    iterated_log,
    is_prime,
    next_prime,
    tower,
)
from repro.utils.rng import SplittableRNG, derive_seed

__all__ = [
    "env",
    "Multiset",
    "RoundElimCache",
    "configure",
    "format_stats",
    "hit_rate",
    "reset_stats",
    "stats",
    "Budget",
    "BudgetDiagnostics",
    "active_budget",
    "FaultPlan",
    "InjectedFault",
    "configure_faults",
    "reset_faults",
    "GFPolynomial",
    "iterated_log",
    "is_prime",
    "next_prime",
    "tower",
    "SplittableRNG",
    "derive_seed",
]
