"""Central registry for every ``REPRO_*`` environment knob.

The pipeline's determinism story depends on knowing *exactly* which
environment variables can change behavior: a knob that only one module
knows about is a knob that no reproducibility audit will ever vary.  This
module is therefore the single source of truth — every ``REPRO_*``
variable read anywhere in the codebase must be declared here with its
type, default, and a docstring, and every read must go through the typed
accessors below (:func:`get_bool` / :func:`get_int` / :func:`get_float` /
:func:`get_str`) or, for call sites with bespoke parsing, :func:`get_raw`.

The contract is enforced statically by lint rule ``REP006``
(:mod:`repro.analysis.rules.envknobs`): a ``REPRO_*`` string literal that
does not name a registered knob, or a direct ``os.environ`` /
``os.getenv`` read of one outside this module, fails ``repro-lint``.

``lcl-landscape lint --env`` prints the registered table
(:func:`render_table`).

This module deliberately imports nothing from :mod:`repro` so that any
package — including the import-pure :mod:`repro.verify` checker half —
can depend on it without dragging machinery along.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

logger = logging.getLogger(__name__)

#: Strings (lower-cased) that parse as ``False`` for boolean knobs.
FALSE_STRINGS = ("0", "false", "off", "no")


@dataclass(frozen=True)
class EnvKnob:
    """Declaration of one ``REPRO_*`` environment variable."""

    name: str
    type: str  # one of "bool", "int", "float", "str"
    default: Any
    doc: str
    #: Where the knob may be read: ``"any"`` (default) or ``"parent"`` —
    #: parent-scoped knobs configure the supervising process and must be
    #: resolved *before* forking; re-reading one inside a pool worker or
    #: an isolated cell child silently picks up whatever environment the
    #: child inherited, which lint rule REP011 flags.
    scope: str = "any"

    def describe_default(self) -> str:
        return "unset" if self.default is None else repr(self.default)


#: name -> declaration; populated by :func:`declare` at import time.
REGISTRY: Dict[str, EnvKnob] = {}

_VALID_TYPES = ("bool", "int", "float", "str")
_VALID_SCOPES = ("any", "parent")


def declare(name: str, type: str, default: Any, doc: str, scope: str = "any") -> EnvKnob:
    """Register a knob (idempotent for identical re-declarations)."""
    if not name.startswith("REPRO_"):
        raise ValueError(f"environment knobs must be REPRO_-prefixed, got {name!r}")
    if type not in _VALID_TYPES:
        raise ValueError(f"knob type must be one of {_VALID_TYPES}, got {type!r}")
    if scope not in _VALID_SCOPES:
        raise ValueError(f"knob scope must be one of {_VALID_SCOPES}, got {scope!r}")
    knob = EnvKnob(
        name=name, type=type, default=default, doc=" ".join(doc.split()), scope=scope
    )
    existing = REGISTRY.get(name)
    if existing is not None and existing != knob:
        raise ValueError(f"conflicting re-declaration of knob {name}")
    REGISTRY[name] = knob
    return knob


def parent_scoped_knobs() -> frozenset:
    """Names of knobs that must only be read in the supervising process."""
    return frozenset(name for name, knob in REGISTRY.items() if knob.scope == "parent")


def _require(name: str) -> EnvKnob:
    knob = REGISTRY.get(name)
    if knob is None:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"undeclared environment knob {name!r}; declared: {known}")
    return knob


def get_raw(name: str) -> Optional[str]:
    """The raw string value of a *declared* knob, or ``None`` when unset.

    Call sites with parsing semantics the typed accessors cannot express
    (dynamic defaults, floors) read through here so the declaration
    requirement still holds.
    """
    _require(name)
    return os.environ.get(name)


def get_str(name: str) -> Optional[str]:
    """String knob: unset or empty reads as the declared default."""
    knob = _require(name)
    raw = os.environ.get(name)
    if not raw:
        return knob.default
    return raw


def get_bool(name: str) -> bool:
    """Boolean knob: ``0 / false / off / no`` (any case) is ``False``,
    any other non-empty value is ``True``, unset is the default."""
    knob = _require(name)
    raw = os.environ.get(name)
    if raw is None:
        return bool(knob.default)
    return raw.strip().lower() not in FALSE_STRINGS


def get_int(name: str) -> Optional[int]:
    """Integer knob; a malformed value logs a warning and reads as the
    default rather than crashing the process at import time."""
    knob = _require(name)
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return knob.default
    try:
        return int(raw)
    except ValueError:
        logger.warning("ignoring non-integer %s=%r", name, raw)
        return knob.default


def get_float(name: str) -> Optional[float]:
    """Float knob; malformed values warn and fall back like :func:`get_int`."""
    knob = _require(name)
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return knob.default
    try:
        return float(raw)
    except ValueError:
        logger.warning("ignoring non-numeric %s=%r", name, raw)
        return knob.default


def render_table() -> str:
    """The knob table printed by ``lcl-landscape lint --env``."""
    rows = [("knob", "type", "default", "description")]
    for name in sorted(REGISTRY):
        knob = REGISTRY[name]
        rows.append((knob.name, knob.type, knob.describe_default(), knob.doc))
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for index, (name, type_, default, doc) in enumerate(rows):
        lines.append(
            f"{name:<{widths[0]}}  {type_:<{widths[1]}}  {default:<{widths[2]}}  {doc}"
        )
        if index == 0:
            lines.append(
                f"{'-' * widths[0]}  {'-' * widths[1]}  {'-' * widths[2]}  {'-' * 11}"
            )
    return "\n".join(lines)


# --------------------------------------------------------------- declarations
# The complete catalog of environment knobs recognized by the pipeline.
# Lint rule REP006 cross-checks every REPRO_* literal in the tree against
# this registry, so adding a knob anywhere else fails `repro-lint`.

declare(
    "REPRO_CACHE",
    "bool",
    True,
    "Master switch for the canonical operator cache; 0/false/off/no computes "
    "everything from scratch.",
)
declare(
    "REPRO_CACHE_DIR",
    "str",
    None,
    "Directory for the on-disk cache layer (one JSON file per entry, written "
    "atomically); unset keeps the cache memory-only.",
)
declare(
    "REPRO_CACHE_MAX_BYTES",
    "int",
    None,
    "Size bound for the on-disk cache layer; least-recently-used entries are "
    "evicted once the total exceeds it.",
)
declare(
    "REPRO_WORKERS",
    "int",
    None,
    "Worker processes for the quantifier-loop pools; defaults to "
    "min(cpu_count, 8).",
)
declare(
    "REPRO_PARALLEL_THRESHOLD",
    "int",
    20_000,
    "Minimum candidate-set size before the quantifier loops fan out to the "
    "process pool; smaller inputs run serially.",
)
declare(
    "REPRO_CHUNK_TIMEOUT",
    "float",
    300.0,
    "Per-chunk wall-clock limit in seconds before a pool chunk is presumed "
    "wedged, the pool recycled, and the chunk retried.",
)
declare(
    "REPRO_CHUNK_RETRIES",
    "int",
    2,
    "Pool-level retry rounds for failed/timed-out chunks before they are "
    "re-executed serially in-process.",
)
declare(
    "REPRO_BITSET",
    "bool",
    True,
    "Compiled bitset backend for the round-elimination operators and label "
    "hygiene (numpy bitmask kernels); 0/false/off/no forces the pure-Python "
    "oracle path.  Unsupported shapes (>64 base labels, node degree >3) "
    "always fall back to the oracle automatically.",
)
declare(
    "REPRO_BITSET_DIFF_COUNT",
    "int",
    100,
    "Population size for the bitset-vs-oracle differential fuzz sweep "
    "(tests marked 'fuzz' in tests/test_bitset_differential.py).",
)
declare(
    "REPRO_SAT",
    "bool",
    True,
    "SAT backend for the decision kernels (0-round solvability, clique-"
    "cover refutation, fixed-point refutation); 0/false/off/no forces pure "
    "enumeration.  Unsupported shapes, solver budget trips, and failed "
    "model validation always fall back to enumeration automatically.",
)
declare(
    "REPRO_SAT_SOLVER",
    "str",
    "auto",
    "SAT engine behind the decision kernels: 'auto' prefers an installed "
    "pysat, 'pysat' requires it (its absence then counts as a fallback), "
    "'dpll' forces the bundled pure-Python solver.",
)
declare(
    "REPRO_SAT_TIMEOUT",
    "float",
    None,
    "Wall-clock limit in seconds for a single SAT solver call; a trip "
    "abandons the SAT path for that decision and falls back to enumeration "
    "(counted as sat_fallbacks).  Unset means no limit.",
)
declare(
    "REPRO_SAT_DIFF_COUNT",
    "int",
    100,
    "Population size for the SAT-vs-enumeration differential fuzz sweep "
    "(tests marked 'fuzz' in tests/test_sat_differential.py).",
)
declare(
    "REPRO_FAULTS",
    "str",
    "",
    "Deterministic fault-injection spec, e.g. 'worker_crash:0.1,"
    "cache_corrupt:0.02'; empty disables the harness.",
)
declare(
    "REPRO_FAULTS_SEED",
    "int",
    0,
    "Seed for the fault-injection plan; the same spec+seed fires the same "
    "faults at the same injection points on every run.",
)
declare(
    "REPRO_CHECKPOINT_DIR",
    "str",
    None,
    "Default directory for atomic, checksummed ProblemSequence checkpoints "
    "(the --checkpoint flag overrides it).",
)
declare(
    "REPRO_CELL_TIMEOUT",
    "float",
    120.0,
    "Per-cell wall-clock limit in seconds for supervised campaign cells "
    "(repro.supervisor); a cell exceeding it is killed and retried, then "
    "quarantined as 'timeout'.",
    scope="parent",
)
declare(
    "REPRO_CELL_MEM_MB",
    "int",
    None,
    "Per-cell address-space cap in MiB applied via resource.setrlimit in the "
    "isolated cell subprocess; resolved by the supervising parent and handed "
    "to the child, never re-read there.",
    scope="parent",
)
declare(
    "REPRO_CELL_RETRIES",
    "int",
    1,
    "Bounded retry attempts for a failed supervised cell beyond the first "
    "try (each attempt re-derives its RNG from scratch); exhaustion "
    "quarantines the cell.",
    scope="parent",
)
declare(
    "REPRO_JOURNAL_DIR",
    "str",
    None,
    "Default directory for append-only, checksummed campaign run journals "
    "(the landscape --journal flag overrides it).",
    scope="parent",
)
declare(
    "REPRO_SCHED_WORKERS",
    "int",
    None,
    "Concurrent worker processes for the lease-based campaign scheduler "
    "(repro.scheduler); defaults to min(cpu_count, 4).  Resolved by the "
    "scheduling parent, never re-read in a worker.",
    scope="parent",
)
declare(
    "REPRO_SCHED_LEASE_SECS",
    "float",
    5.0,
    "Lease duration in seconds for scheduler-dispatched cells; a worker "
    "whose heartbeats stop for this long is presumed dead, killed, and its "
    "cell re-dispatched (at-least-once execution with bit-identical dedup).",
    scope="parent",
)
declare(
    "REPRO_SCHED_BACKOFF_BASE",
    "float",
    0.05,
    "Base delay in seconds for the deterministic seeded retry backoff "
    "between cell attempts; 0 disables backoff.  Applied only to transient "
    "failures (timeout/oom/signal/lost), never to deterministic errors.",
    scope="parent",
)
declare(
    "REPRO_SCHED_BACKOFF_FACTOR",
    "float",
    2.0,
    "Exponential growth factor for the retry backoff: attempt k waits "
    "base * factor**k (capped, jittered).",
    scope="parent",
)
declare(
    "REPRO_SCHED_BACKOFF_MAX",
    "float",
    30.0,
    "Upper bound in seconds on any single retry-backoff delay.",
    scope="parent",
)
declare(
    "REPRO_SCHED_BACKOFF_JITTER",
    "float",
    0.5,
    "Multiplicative jitter fraction in [0, 1] for retry backoff; the delay "
    "is scaled by a deterministic per-(cell, attempt) draw in [1-jitter, 1] "
    "derived from the campaign seed, so replays back off identically.",
    scope="parent",
)
declare(
    "REPRO_LINT_CACHE",
    "bool",
    True,
    "Incremental per-file cache for repro-lint (content-hash keyed; skips "
    "re-parsing unchanged files); 0/false/off/no analyzes every file from "
    "scratch.  Cached and uncached runs produce byte-identical reports.",
)
declare(
    "REPRO_LINT_CACHE_DIR",
    "str",
    ".repro-lint-cache",
    "Directory for repro-lint's incremental cache records (one JSON file "
    "per linted source file, written atomically).",
)
declare(
    "REPRO_CONFORMANCE_COUNT",
    "int",
    200,
    "Population size for the conformance fuzz sweep (tests marked 'fuzz'); "
    "CI's nightly job runs 5x the default.",
)
