"""Deterministic, splittable randomness.

Randomized LOCAL algorithms (Definition 2.1) equip every node with a private
random bit string.  For reproducible simulations each node's stream must be
a pure function of ``(experiment seed, node id)`` — independent of
scheduling order — so we derive per-node seeds by hashing rather than by
drawing from a shared generator.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any


def derive_seed(*parts: Any) -> int:
    """A 64-bit seed derived deterministically from the given parts.

    Parts are rendered with ``repr`` and hashed with BLAKE2b, so any mix of
    ints/strings/tuples works and unrelated part tuples collide only with
    cryptographically negligible probability.
    """
    digest = hashlib.blake2b(
        "\x1f".join(repr(p) for p in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class SplittableRNG:
    """A seeded RNG that can be split into independent child RNGs.

    ``rng.child("node", 17)`` always yields the same stream for the same
    root seed, regardless of how many other children were created first.
    """

    def __init__(self, seed: Any):
        self._seed = derive_seed("root", seed)
        self.random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        return self._seed

    def child(self, *parts: Any) -> "SplittableRNG":
        return SplittableRNG(derive_seed(self._seed, *parts))

    def bits(self, count: int) -> str:
        """A string of ``count`` random bits, e.g. ``"0110..."``."""
        return "".join("1" if self.random.random() < 0.5 else "0" for _ in range(count))

    def integer(self, low: int, high: int) -> int:
        """A uniform integer in ``[low, high]`` inclusive."""
        return self.random.randint(low, high)

    def __repr__(self) -> str:
        return f"SplittableRNG(seed={self._seed})"
