"""Canonical, hashable multisets.

Node and edge configurations of node-edge-checkable LCL problems
(Definition 2.3 of the paper) are *multisets* of output labels.  Python has
no hashable multiset, so this module provides :class:`Multiset`: an
immutable multiset with a canonical tuple representation, suitable as a
dictionary key or set element.

Labels may be any hashable objects; internally elements are sorted by a
stable key (``(type qualname, repr)``) so that multisets over heterogeneous
or frozenset-valued labels (which arise after round elimination, where
labels are *sets* of labels) still canonicalize deterministically.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Iterator


def label_sort_key(label: Any) -> tuple:
    """A total order on arbitrary hashable labels.

    Round elimination turns labels into ``frozenset``s of labels (and then
    frozensets of frozensets, ...), whose ``repr`` depends on hash-based
    iteration order and therefore is not stable across interpreter runs.
    Frozensets and tuples are keyed recursively by their sorted element
    keys; everything else by ``(type qualname, repr)``, which keeps the
    order total (the type tag differs before the payloads are compared).
    """
    if isinstance(label, frozenset):
        return (
            "frozenset",
            tuple(sorted(label_sort_key(element) for element in label)),
        )
    if isinstance(label, tuple):
        return ("tuple", tuple(label_sort_key(element) for element in label))
    return (type(label).__qualname__, repr(label))


class Multiset:
    """An immutable multiset of hashable elements.

    >>> Multiset(["A", "B", "A"]) == Multiset(["B", "A", "A"])
    True
    >>> len(Multiset(["A", "B", "A"]))
    3
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[Any] = ()):
        self._items: tuple[Any, ...] = tuple(sorted(items, key=label_sort_key))
        self._hash = hash(self._items)

    @classmethod
    def _from_sorted(cls, items: tuple) -> "Multiset":
        """Internal fast path: trust ``items`` to already be canonical.

        The caller must guarantee ``tuple(sorted(items, key=label_sort_key))
        == tuple(items)`` — :mod:`repro.roundelim.bitset` does, by ordering
        its label universe once and emitting configurations through that
        precomputed order.  Skipping the per-element key computation here is
        what lets the compiled kernels avoid re-deriving deep recursive sort
        keys for every allowed configuration they emit.
        """
        multiset = object.__new__(cls)
        multiset._items = tuple(items)
        multiset._hash = hash(multiset._items)
        return multiset

    @property
    def items(self) -> tuple[Any, ...]:
        """The elements in canonical (sorted) order, with multiplicity."""
        return self._items

    def counter(self) -> Counter:
        """Element multiplicities as a :class:`collections.Counter`."""
        return Counter(self._items)

    def support(self) -> frozenset:
        """The set of distinct elements."""
        return frozenset(self._items)

    def count(self, element: Any) -> int:
        """Multiplicity of ``element``."""
        return self._items.count(element)

    def add(self, element: Any) -> "Multiset":
        """A new multiset with ``element`` added once."""
        return Multiset(self._items + (element,))

    def remove_one(self, element: Any) -> "Multiset":
        """A new multiset with one occurrence of ``element`` removed.

        Raises ``ValueError`` if the element is absent.
        """
        items = list(self._items)
        items.remove(element)  # raises ValueError if missing
        return Multiset(items)

    def map(self, fn) -> "Multiset":
        """A new multiset with ``fn`` applied to every element."""
        return Multiset(fn(x) for x in self._items)

    def __contains__(self, element: Any) -> bool:
        return element in self._items

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._items == other._items

    def __le__(self, other: "Multiset") -> bool:
        """Multiset inclusion."""
        if not isinstance(other, Multiset):
            return NotImplemented
        mine, theirs = self.counter(), other.counter()
        return all(theirs[x] >= k for x, k in mine.items())

    def __repr__(self) -> str:
        inner = ", ".join(repr(x) for x in self._items)
        return f"Multiset([{inner}])"
