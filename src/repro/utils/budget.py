"""Cooperative resource budgets for the round-elimination engine.

The semidecision procedure of Question 1.7 iterates ``f = R̄∘R`` and may
never stabilize; each step can blow up doubly exponentially in the
alphabet.  A :class:`Budget` turns that semidecision into an *anytime*
algorithm: the quantifier/subset loops of :mod:`repro.roundelim.ops`
(and the sequence walk of :mod:`repro.roundelim.gap`) poll the active
budget at cheap cooperative checkpoints, and exhaustion raises
:class:`~repro.exceptions.BudgetExceededError` carrying machine-readable
:class:`BudgetDiagnostics` — which ``speedup`` /
``semidecide_constant_time`` / the landscape classification panel turn
into a structured ``UNKNOWN(>= step k)`` verdict instead of hanging.

Limits (all optional, all ``None`` = unlimited):

* ``deadline`` — wall-clock seconds from :meth:`Budget.start` (the
  constructor starts the clock; ``with budget:`` restarts it);
* ``max_configs`` — total candidate configurations enumerated by the
  power-set constructions;
* ``max_alphabet`` — largest output alphabet any operator may build;
* ``max_rss_bytes`` — peak resident set size (best-effort, via
  ``resource.getrusage``; ignored where unavailable).

A budget is *activated* either by passing it explicitly to the pipeline
entry points (``speedup(..., budget=...)``) or ambiently as a context
manager::

    with Budget(deadline=2.0):
        semidecide_constant_time(problem, max_steps=50)

Activation is thread-local and stack-shaped, so nested budgets see the
innermost one.  Checks are cooperative: the engine polls between chunks
and every :data:`TICK_EVERY` serial iterations, so overshoot is bounded
by one chunk of work, never by a whole operator application.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.exceptions import BudgetExceededError

logger = logging.getLogger(__name__)

#: Serial loops poll the active budget every this many iterations.
TICK_EVERY = 2048


@dataclass(frozen=True)
class BudgetDiagnostics:
    """Machine-readable account of a budget trip (or a completed run)."""

    #: Which limit tripped: ``"deadline"``, ``"configs"``, ``"alphabet"``,
    #: or ``"rss"``.
    reason: str
    #: The configured limit that was exceeded.
    limit: float
    #: The observed value at the moment of the trip.
    observed: float
    #: Wall-clock seconds since the budget started.
    elapsed: float
    #: Candidate configurations enumerated so far (across all operators).
    configurations: int
    #: Round-elimination step in progress when the budget tripped
    #: (``None`` outside a sequence walk).
    step: Optional[int] = None
    #: Output-alphabet size of the operator being built, if known.
    alphabet_size: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "reason": self.reason,
            "limit": self.limit,
            "observed": self.observed,
            "elapsed": round(self.elapsed, 6),
            "configurations": self.configurations,
            "step": self.step,
            "alphabet_size": self.alphabet_size,
        }

    def __str__(self) -> str:
        where = "" if self.step is None else f" at step {self.step}"
        return (
            f"budget exceeded{where}: {self.reason} limit {self.limit:g} "
            f"(observed {self.observed:g}) after {self.elapsed:.3f}s, "
            f"{self.configurations} configurations enumerated"
        )


def _current_rss_bytes() -> Optional[int]:
    try:
        import resource
    except ImportError:  # non-POSIX platforms
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalize heuristically (a real RSS
    # is never below 1 MiB, so values that small must be KiB).
    return usage * 1024 if usage < 1 << 20 else usage


class Budget:
    """A cooperative resource budget (see the module docstring)."""

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_configs: Optional[int] = None,
        max_alphabet: Optional[int] = None,
        max_rss_bytes: Optional[int] = None,
    ):
        self.deadline = deadline
        self.max_configs = max_configs
        self.max_alphabet = max_alphabet
        self.max_rss_bytes = max_rss_bytes
        self.configurations = 0
        self.step: Optional[int] = None
        self.alphabet_size: Optional[int] = None
        self._tick = 0
        self.start()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "Budget":
        """(Re)start the wall clock and zero the consumption counters."""
        self._started = time.monotonic()
        self.configurations = 0
        self.step = None
        self.alphabet_size = None
        self._tick = 0
        return self

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def remaining_time(self) -> Optional[float]:
        """Seconds left on the deadline (``None`` when unlimited)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    # -- cooperative checkpoints -------------------------------------------
    def _trip(self, reason: str, limit: float, observed: float) -> None:
        diagnostics = BudgetDiagnostics(
            reason=reason,
            limit=limit,
            observed=observed,
            elapsed=self.elapsed(),
            configurations=self.configurations,
            step=self.step,
            alphabet_size=self.alphabet_size,
        )
        logger.warning("%s", diagnostics)
        raise BudgetExceededError(diagnostics)

    def check(self) -> None:
        """Poll the deadline and RSS ceiling; raise on exhaustion."""
        if self.deadline is not None:
            elapsed = self.elapsed()
            if elapsed > self.deadline:
                self._trip("deadline", self.deadline, elapsed)
        if self.max_rss_bytes is not None:
            rss = _current_rss_bytes()
            if rss is not None and rss > self.max_rss_bytes:
                self._trip("rss", self.max_rss_bytes, rss)

    def charge(self, configs: int) -> None:
        """Account ``configs`` enumerated configurations, then poll."""
        self.configurations += configs
        if self.max_configs is not None and self.configurations > self.max_configs:
            self._trip("configs", self.max_configs, self.configurations)
        self.check()

    def tick(self, iterations: int = 1) -> None:
        """Cheap per-iteration poll: only calls :meth:`check` every
        :data:`TICK_EVERY` accumulated iterations."""
        self._tick += iterations
        if self._tick >= TICK_EVERY:
            self._tick = 0
            self.check()

    def note_step(self, step: int) -> None:
        """Record the sequence step in progress (for diagnostics)."""
        self.step = step

    def note_alphabet(self, size: int) -> None:
        """Record (and bound) the operator's output-alphabet size."""
        self.alphabet_size = size
        if self.max_alphabet is not None and size > self.max_alphabet:
            self._trip("alphabet", self.max_alphabet, size)

    # -- ambient activation -------------------------------------------------
    def __enter__(self) -> "Budget":
        self.start()
        _active_stack().append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        stack = _active_stack()
        if stack and stack[-1] is self:
            stack.pop()

    def __repr__(self) -> str:
        limits = ", ".join(
            f"{name}={value!r}"
            for name, value in (
                ("deadline", self.deadline),
                ("max_configs", self.max_configs),
                ("max_alphabet", self.max_alphabet),
                ("max_rss_bytes", self.max_rss_bytes),
            )
            if value is not None
        )
        return f"Budget({limits or 'unlimited'})"


_local = threading.local()


def _active_stack() -> List[Budget]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def active_budget() -> Optional[Budget]:
    """The innermost ambient budget of this thread, if any."""
    stack = _active_stack()
    return stack[-1] if stack else None


def charge(configs: int) -> None:
    """Charge the ambient budget (no-op without one)."""
    budget = active_budget()
    if budget is not None:
        budget.charge(configs)


def tick(iterations: int = 1) -> None:
    """Tick the ambient budget (no-op without one)."""
    budget = active_budget()
    if budget is not None:
        budget.tick(iterations)


def check() -> None:
    """Poll the ambient budget (no-op without one)."""
    budget = active_budget()
    if budget is not None:
        budget.check()


def note_alphabet(size: int) -> None:
    """Report an operator alphabet size to the ambient budget."""
    budget = active_budget()
    if budget is not None:
        budget.note_alphabet(size)


def note_step(step: int) -> None:
    """Report the current sequence step to the ambient budget."""
    budget = active_budget()
    if budget is not None:
        budget.note_step(step)
