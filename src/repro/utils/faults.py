"""Deterministic, seedable fault injection for the round-elimination engine.

The robustness layer (pool hardening, cache corruption recovery, sequence
checkpointing) is only trustworthy if it is *exercised*: this module lets
tests — and the CI chaos job — inject controlled failures at every
recovery boundary and then assert that results are bit-identical to a
clean serial run.

Faults are configured by the ``REPRO_FAULTS`` environment variable (or
programmatically via :func:`configure_faults`) as a comma-separated list
of ``kind:rate`` pairs::

    REPRO_FAULTS=worker_crash:0.1,slow_chunk:0.05,cache_corrupt:0.02
    REPRO_FAULTS_SEED=7

Supported kinds
---------------
``worker_crash``
    A pool worker raises :class:`InjectedFault` at the start of a chunk
    (exercises per-chunk retry and serial rescue in
    :mod:`repro.roundelim.ops`).
``worker_exit``
    A pool worker hard-exits (``os._exit``), breaking the whole process
    pool (exercises ``BrokenProcessPool`` detection and pool rebuild).
``slow_chunk``
    A pool worker sleeps :data:`SLOW_CHUNK_SECONDS` before working
    (exercises per-chunk timeouts when they are configured tightly).
``cache_corrupt``
    A disk read in :mod:`repro.utils.cache` returns truncated bytes
    (exercises the poisoned-entry path: delete, count, recompute).
``checkpoint_truncate``
    A checkpoint write in :mod:`repro.roundelim.checkpoint` persists a
    torn (truncated) file, as if the process had been killed mid-write
    (exercises checksum verification and fresh-start recovery).
``sim_crash``
    A supervised simulation cell raises :class:`InjectedFault` mid-run
    (exercises the supervisor's capture-traceback / retry / quarantine
    path in :mod:`repro.supervisor`).
``sim_hang``
    A supervised simulation cell stalls indefinitely (exercises the
    per-cell wall-clock timeout and kill path).
``sim_oom``
    A supervised simulation cell fails allocation (``MemoryError``), as
    under a tight ``resource.setrlimit`` cap (exercises the ``oom``
    quarantine classification).
``journal_torn``
    A campaign-journal append persists a torn (truncated) line, as if
    the process died mid-write (exercises per-line checksum recovery on
    resume: the damaged cell is recomputed, later lines still load).
``adversarial_ids``
    :func:`repro.graphs.ids.random_ids` silently returns a worst-case
    (adversarially ordered) assignment instead of a random one
    (exercises the Definition 2.1 stance that identifier assignment is
    adversarial: algorithms must stay *correct*, though measured
    localities may legitimately shift).
``worker_abort``
    A scheduler worker process SIGKILLs itself mid-lease, after
    accepting a cell but before completing it (exercises lease expiry
    detection, reclamation, worker respawn, and re-dispatch in
    :mod:`repro.scheduler`).
``heartbeat_stall``
    A scheduler worker stops heartbeating *and* stalls its cell — a
    silent hang rather than a crash (exercises the lease-deadline kill
    path and at-least-once re-dispatch).
``duplicate_completion``
    A scheduler worker reports — and journals — the same completed cell
    twice (exercises dedup by cell id with the bit-identical assertion
    in the scheduler and the shard merge).

Determinism
-----------
Every decision is a pure function of ``(seed, kind, per-kind counter)``
via SHA-256, so a given configuration fires the same faults at the same
injection points on every run — no global RNG state is consumed.  Worker
processes forked by the pool inherit the parent's plan (and re-read the
environment under spawn), so chaos runs are reproducible there too.
"""

from __future__ import annotations

import logging
import os
import time
from hashlib import sha256
from typing import Dict, Optional, Tuple, Union

from repro.utils import env

logger = logging.getLogger(__name__)

_ENV_FAULTS = "REPRO_FAULTS"
_ENV_SEED = "REPRO_FAULTS_SEED"

#: Recognized fault kinds (unknown kinds in a spec are rejected loudly).
KINDS = (
    "worker_crash",
    "worker_exit",
    "slow_chunk",
    "cache_corrupt",
    "checkpoint_truncate",
    "sim_crash",
    "sim_hang",
    "sim_oom",
    "journal_torn",
    "adversarial_ids",
    "worker_abort",
    "heartbeat_stall",
    "duplicate_completion",
)

#: Simulator-level fault kinds decided by the campaign supervisor (the
#: parent process draws from the plan and ships the instruction to the
#: isolated cell, keeping the occurrence counters in one process).
SIM_KINDS = ("sim_crash", "sim_hang", "sim_oom")

#: Scheduler-level fault kinds decided by the scheduler parent at
#: dispatch time and shipped to the worker as instructions (same
#: one-process counter discipline as :data:`SIM_KINDS`).
SCHED_KINDS = ("worker_abort", "heartbeat_stall", "duplicate_completion")

#: How long a ``slow_chunk`` fault stalls a worker.
SLOW_CHUNK_SECONDS = 0.05

#: How long a ``sim_hang`` fault stalls a cell — far beyond any sane
#: per-cell timeout, so the supervisor's kill path always fires first.
SIM_HANG_SECONDS = 3600.0

#: How long a ``heartbeat_stall`` fault silences a worker — far beyond
#: any sane lease deadline, so the scheduler's reclaim path always
#: fires first.
HEARTBEAT_STALL_SECONDS = 3600.0


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""

    def __init__(self, kind: str, occurrence: int):
        super().__init__(f"injected fault {kind!r} (occurrence {occurrence})")
        self.kind = kind
        self.occurrence = occurrence


def parse_spec(text: str) -> Dict[str, float]:
    """Parse ``kind:rate,kind:rate`` into a rate table (strict)."""
    rates: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, _, raw_rate = part.partition(":")
        kind = kind.strip()
        if kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; known: {', '.join(KINDS)}"
            )
        try:
            rate = float(raw_rate)
        except ValueError:
            raise ValueError(f"bad fault rate for {kind!r}: {raw_rate!r}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate for {kind!r} must be in [0, 1], got {rate}")
        rates[kind] = rate
    return rates


class FaultPlan:
    """A seeded rate table plus per-kind occurrence counters."""

    def __init__(self, rates: Dict[str, float], seed: int = 0):
        self.rates = dict(rates)
        self.seed = int(seed)
        self._counts: Dict[str, int] = {kind: 0 for kind in self.rates}

    @property
    def active(self) -> bool:
        return any(rate > 0 for rate in self.rates.values())

    def fire(self, kind: str) -> bool:
        """Deterministically decide whether occurrence ``n`` of ``kind``
        fires; advances the per-kind counter either way."""
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        n = self._counts.get(kind, 0)
        self._counts[kind] = n + 1
        digest = sha256(f"{self.seed}\x00{kind}\x00{n}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < rate


# ------------------------------------------------------------------ global API
_plan: Optional[FaultPlan] = None


def _build_from_env() -> FaultPlan:
    spec = env.get_str(_ENV_FAULTS) or ""
    try:
        rates = parse_spec(spec) if spec else {}
    except ValueError as error:
        raise ValueError(f"invalid {_ENV_FAULTS}: {error}") from error
    seed = env.get_int(_ENV_SEED) or 0
    return FaultPlan(rates, seed=seed)


def get_plan() -> FaultPlan:
    """The process-wide fault plan (built lazily from the environment)."""
    global _plan
    if _plan is None:
        _plan = _build_from_env()
        if _plan.active:
            logger.warning("fault injection active: %s", _plan.rates)
    return _plan


def configure_faults(
    spec: Union[None, str, Dict[str, float]] = None, seed: int = 0
) -> FaultPlan:
    """Install a fault plan programmatically (``None`` disables faults)."""
    global _plan
    if spec is None:
        rates: Dict[str, float] = {}
    elif isinstance(spec, str):
        rates = parse_spec(spec)
    else:
        for kind in spec:
            if kind not in KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rates = dict(spec)
    _plan = FaultPlan(rates, seed=seed)
    if _plan.active:
        logger.warning("fault injection configured: %s", _plan.rates)
    return _plan


def reset_faults() -> None:
    """Forget the plan so the next use rebuilds from the environment."""
    global _plan
    _plan = None


# ------------------------------------------------------------ injection points
def maybe_crash(kind: str = "worker_crash") -> None:
    """Raise :class:`InjectedFault` when the next occurrence fires."""
    plan = get_plan()
    if plan.fire(kind):
        raise InjectedFault(kind, plan._counts[kind] - 1)


def maybe_exit() -> None:
    """Hard-exit the current (worker) process when the fault fires."""
    plan = get_plan()
    if plan.fire("worker_exit"):
        os._exit(3)


def maybe_sleep(kind: str = "slow_chunk", duration: float = SLOW_CHUNK_SECONDS) -> None:
    """Stall when the next occurrence fires (simulated slow chunk)."""
    if get_plan().fire(kind):
        time.sleep(duration)


def execute_sim_fault(kind: str, occurrence: int = 0) -> None:
    """Carry out a simulator-level fault *instruction* inside a cell.

    Unlike the ``maybe_*`` helpers, this does not consult the plan: the
    supervisor draws from the plan in the parent process (keeping the
    occurrence counters deterministic in one place) and ships the fired
    kinds to the isolated cell, which executes them here.

    ``sim_crash`` raises :class:`InjectedFault`; ``sim_hang`` stalls for
    :data:`SIM_HANG_SECONDS` (the supervisor's timeout kills the cell
    long before that); ``sim_oom`` raises ``MemoryError`` as a tight
    ``resource.setrlimit`` cap would on the next allocation.
    """
    if kind == "sim_crash":
        raise InjectedFault(kind, occurrence)
    if kind == "sim_hang":
        logger.warning("injected sim_hang: stalling cell")
        time.sleep(SIM_HANG_SECONDS)
        return
    if kind == "sim_oom":
        raise MemoryError(f"injected fault 'sim_oom' (occurrence {occurrence})")
    raise ValueError(f"not a simulator-level fault kind: {kind!r}")


def fire_sim_faults(plan: Optional[FaultPlan] = None) -> Tuple[str, ...]:
    """The simulator-level kinds whose next occurrence fires, in
    :data:`SIM_KINDS` order — the supervisor's per-attempt draw."""
    plan = plan if plan is not None else get_plan()
    return tuple(kind for kind in SIM_KINDS if plan.fire(kind))


def fire_sched_faults(plan: Optional[FaultPlan] = None) -> Tuple[str, ...]:
    """The scheduler-level kinds whose next occurrence fires, in
    :data:`SCHED_KINDS` order — the scheduler's per-dispatch draw.

    Drawn in the scheduler parent (which owns the occurrence counters)
    and shipped to the worker as instructions, so a chaos run fires the
    same faults at the same dispatches regardless of worker count."""
    plan = plan if plan is not None else get_plan()
    return tuple(kind for kind in SCHED_KINDS if plan.fire(kind))


def maybe_adversarial_ids() -> bool:
    """Whether the next identifier assignment should be adversarial."""
    return get_plan().fire("adversarial_ids")


def corrupt_text(kind: str, text: str) -> str:
    """Return ``text`` truncated when the next occurrence of ``kind``
    fires — used to simulate torn writes and bit-rot on reads."""
    plan = get_plan()
    if plan.fire(kind):
        logger.warning("injecting %s: truncating %d-byte payload", kind, len(text))
        return text[: len(text) // 2]
    return text
