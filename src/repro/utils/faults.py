"""Deterministic, seedable fault injection for the round-elimination engine.

The robustness layer (pool hardening, cache corruption recovery, sequence
checkpointing) is only trustworthy if it is *exercised*: this module lets
tests — and the CI chaos job — inject controlled failures at every
recovery boundary and then assert that results are bit-identical to a
clean serial run.

Faults are configured by the ``REPRO_FAULTS`` environment variable (or
programmatically via :func:`configure_faults`) as a comma-separated list
of ``kind:rate`` pairs::

    REPRO_FAULTS=worker_crash:0.1,slow_chunk:0.05,cache_corrupt:0.02
    REPRO_FAULTS_SEED=7

Supported kinds
---------------
``worker_crash``
    A pool worker raises :class:`InjectedFault` at the start of a chunk
    (exercises per-chunk retry and serial rescue in
    :mod:`repro.roundelim.ops`).
``worker_exit``
    A pool worker hard-exits (``os._exit``), breaking the whole process
    pool (exercises ``BrokenProcessPool`` detection and pool rebuild).
``slow_chunk``
    A pool worker sleeps :data:`SLOW_CHUNK_SECONDS` before working
    (exercises per-chunk timeouts when they are configured tightly).
``cache_corrupt``
    A disk read in :mod:`repro.utils.cache` returns truncated bytes
    (exercises the poisoned-entry path: delete, count, recompute).
``checkpoint_truncate``
    A checkpoint write in :mod:`repro.roundelim.checkpoint` persists a
    torn (truncated) file, as if the process had been killed mid-write
    (exercises checksum verification and fresh-start recovery).

Determinism
-----------
Every decision is a pure function of ``(seed, kind, per-kind counter)``
via SHA-256, so a given configuration fires the same faults at the same
injection points on every run — no global RNG state is consumed.  Worker
processes forked by the pool inherit the parent's plan (and re-read the
environment under spawn), so chaos runs are reproducible there too.
"""

from __future__ import annotations

import logging
import os
import time
from hashlib import sha256
from typing import Dict, Optional, Union

from repro.utils import env

logger = logging.getLogger(__name__)

_ENV_FAULTS = "REPRO_FAULTS"
_ENV_SEED = "REPRO_FAULTS_SEED"

#: Recognized fault kinds (unknown kinds in a spec are rejected loudly).
KINDS = (
    "worker_crash",
    "worker_exit",
    "slow_chunk",
    "cache_corrupt",
    "checkpoint_truncate",
)

#: How long a ``slow_chunk`` fault stalls a worker.
SLOW_CHUNK_SECONDS = 0.05


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""

    def __init__(self, kind: str, occurrence: int):
        super().__init__(f"injected fault {kind!r} (occurrence {occurrence})")
        self.kind = kind
        self.occurrence = occurrence


def parse_spec(text: str) -> Dict[str, float]:
    """Parse ``kind:rate,kind:rate`` into a rate table (strict)."""
    rates: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, _, raw_rate = part.partition(":")
        kind = kind.strip()
        if kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; known: {', '.join(KINDS)}"
            )
        try:
            rate = float(raw_rate)
        except ValueError:
            raise ValueError(f"bad fault rate for {kind!r}: {raw_rate!r}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate for {kind!r} must be in [0, 1], got {rate}")
        rates[kind] = rate
    return rates


class FaultPlan:
    """A seeded rate table plus per-kind occurrence counters."""

    def __init__(self, rates: Dict[str, float], seed: int = 0):
        self.rates = dict(rates)
        self.seed = int(seed)
        self._counts: Dict[str, int] = {kind: 0 for kind in self.rates}

    @property
    def active(self) -> bool:
        return any(rate > 0 for rate in self.rates.values())

    def fire(self, kind: str) -> bool:
        """Deterministically decide whether occurrence ``n`` of ``kind``
        fires; advances the per-kind counter either way."""
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        n = self._counts.get(kind, 0)
        self._counts[kind] = n + 1
        digest = sha256(f"{self.seed}\x00{kind}\x00{n}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < rate


# ------------------------------------------------------------------ global API
_plan: Optional[FaultPlan] = None


def _build_from_env() -> FaultPlan:
    spec = env.get_str(_ENV_FAULTS) or ""
    try:
        rates = parse_spec(spec) if spec else {}
    except ValueError as error:
        raise ValueError(f"invalid {_ENV_FAULTS}: {error}") from error
    seed = env.get_int(_ENV_SEED) or 0
    return FaultPlan(rates, seed=seed)


def get_plan() -> FaultPlan:
    """The process-wide fault plan (built lazily from the environment)."""
    global _plan
    if _plan is None:
        _plan = _build_from_env()
        if _plan.active:
            logger.warning("fault injection active: %s", _plan.rates)
    return _plan


def configure_faults(
    spec: Union[None, str, Dict[str, float]] = None, seed: int = 0
) -> FaultPlan:
    """Install a fault plan programmatically (``None`` disables faults)."""
    global _plan
    if spec is None:
        rates: Dict[str, float] = {}
    elif isinstance(spec, str):
        rates = parse_spec(spec)
    else:
        for kind in spec:
            if kind not in KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rates = dict(spec)
    _plan = FaultPlan(rates, seed=seed)
    if _plan.active:
        logger.warning("fault injection configured: %s", _plan.rates)
    return _plan


def reset_faults() -> None:
    """Forget the plan so the next use rebuilds from the environment."""
    global _plan
    _plan = None


# ------------------------------------------------------------ injection points
def maybe_crash(kind: str = "worker_crash") -> None:
    """Raise :class:`InjectedFault` when the next occurrence fires."""
    plan = get_plan()
    if plan.fire(kind):
        raise InjectedFault(kind, plan._counts[kind] - 1)


def maybe_exit() -> None:
    """Hard-exit the current (worker) process when the fault fires."""
    plan = get_plan()
    if plan.fire("worker_exit"):
        os._exit(3)


def maybe_sleep(kind: str = "slow_chunk", duration: float = SLOW_CHUNK_SECONDS) -> None:
    """Stall when the next occurrence fires (simulated slow chunk)."""
    if get_plan().fire(kind):
        time.sleep(duration)


def corrupt_text(kind: str, text: str) -> str:
    """Return ``text`` truncated when the next occurrence of ``kind``
    fires — used to simulate torn writes and bit-rot on reads."""
    plan = get_plan()
    if plan.fire(kind):
        logger.warning("injecting %s: truncating %d-byte payload", kind, len(text))
        return text[: len(text) // 2]
    return text
