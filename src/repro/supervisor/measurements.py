"""Built-in cell runners and panel plans for landscape campaigns.

This module turns the Figure-1 measurement code that used to live
inline in ``cmd_landscape`` into *registered, importable cell runners*
(:func:`repro.supervisor.cells.register_runner`), so each
``(series, n)`` measurement can run as a supervised, crash-isolated,
journaled campaign cell — and re-resolve by name inside a fresh
subprocess or a cold resume.

The measured values are identical to the pre-supervisor CLI: the same
graphs, the same explicit seeds (``seed = n`` / ``seed = side``), the
same sampled-node localities.  Supervision changes who survives a bad
cell, never what a good cell measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.exceptions import SupervisorError
from repro.landscape import LandscapePanel
from repro.supervisor.campaign import CampaignReport
from repro.supervisor.cells import CellResult, CellSpec, register_runner
from repro.utils.rng import SplittableRNG

#: Panels measurable as supervised campaigns (the ``re`` panel is a
#: budgeted decision procedure, not a cell grid — it keeps its own path).
MEASURED_PANELS = ("trees", "grids", "volume")


# ------------------------------------------------------------------ runners
def _sampled_locality(graph: Any, algorithm: Any, seed: int) -> int:
    from repro.graphs.ids import random_ids
    from repro.local.model import run_local_algorithm

    nodes = list(range(0, graph.num_nodes, max(1, graph.num_nodes // 8)))
    result = run_local_algorithm(
        graph, algorithm, ids=random_ids(graph, seed=seed), nodes=nodes
    )
    return max(result.radius_per_node)


@register_runner("landscape.trees")
def run_tree_cell(spec: CellSpec, rng: SplittableRNG) -> int:
    """Measured locality of one tree-panel series at one ``n``."""
    from repro.graphs import random_tree
    from repro.local.algorithms import LinialColoring, TwoHopMaxDegree

    graph = random_tree(spec.n, 3, seed=spec.n)
    if spec.problem == "two-hop-max-degree":
        return _sampled_locality(graph, TwoHopMaxDegree(), spec.seed)
    if spec.problem == "linial-coloring":
        return _sampled_locality(graph, LinialColoring(3), spec.seed)
    raise SupervisorError(f"unknown trees-panel series {spec.problem!r}")


@register_runner("landscape.volume")
def run_volume_cell(spec: CellSpec, rng: SplittableRNG) -> int:
    """Probes used by one VOLUME-panel series at one ``n``."""
    from repro.graphs import cycle
    from repro.graphs.ids import random_ids
    from repro.local.algorithms.cole_vishkin import orient_path_inputs
    from repro.volume import (
        ChainColeVishkin,
        ComponentCount,
        NeighborhoodAggregate,
        run_volume_algorithm,
    )

    builders = {
        "neighborhood-max-degree": (lambda: NeighborhoodAggregate(2), False),
        "chain-CV-3-coloring": (ChainColeVishkin, True),
        "component-count": (ComponentCount, False),
    }
    if spec.problem not in builders:
        raise SupervisorError(f"unknown volume-panel series {spec.problem!r}")
    build, needs_orientation = builders[spec.problem]
    graph = cycle(spec.n)
    inputs = orient_path_inputs(graph) if needs_orientation else None
    result = run_volume_algorithm(
        graph, build(), inputs=inputs, ids=random_ids(graph, seed=spec.seed)
    )
    return result.max_probes_used


@register_runner("landscape.grids")
def run_grid_cell(spec: CellSpec, rng: SplittableRNG) -> int:
    """Measured locality of one grid-panel series at one side length."""
    from repro.grids import (
        DimensionLengthProbe,
        FollowDimensionOrientation,
        GridProductColoring,
        OrientedGrid,
        prod_ids,
    )
    from repro.local.model import run_local_algorithm

    side = int(spec.param("side", 0))
    if side <= 0:
        raise SupervisorError(f"grid cell {spec.cell_id()} lacks a side parameter")
    grid = OrientedGrid([side, side])
    inputs = grid.orientation_inputs()
    if spec.problem == "follow-orientation":
        result = run_local_algorithm(
            grid.graph, FollowDimensionOrientation(), inputs=inputs
        )
    elif spec.problem == "product-CV-coloring":
        result = run_local_algorithm(
            grid.graph,
            GridProductColoring(dimensions=2),
            inputs=inputs,
            ids=prod_ids(grid, seed=side),
        )
    elif spec.problem == "dim0-side-length":
        result = run_local_algorithm(grid.graph, DimensionLengthProbe(), inputs=inputs)
    else:
        raise SupervisorError(f"unknown grids-panel series {spec.problem!r}")
    return result.max_radius_used


# -------------------------------------------------------------------- plans
@dataclass(frozen=True)
class SeriesPlan:
    """One planned series: its cells are one campaign cell per ``n``."""

    problem: str
    expected: str
    cells: Tuple[CellSpec, ...]

    @property
    def ns(self) -> Tuple[int, ...]:
        return tuple(spec.n for spec in self.cells)


@dataclass(frozen=True)
class PanelPlan:
    """A full panel as a campaign: title plus per-series cell grids."""

    panel: str
    title: str
    series: Tuple[SeriesPlan, ...]

    @property
    def cells(self) -> List[CellSpec]:
        return [spec for plan in self.series for spec in plan.cells]


def plan_panel(panel: str, points: int) -> PanelPlan:
    """The campaign cell grid for one measured landscape panel."""
    if panel == "trees":
        ns = [2**k for k in range(5, 5 + points)]
        series = [
            ("two-hop-max-degree", "O(1)"),
            ("linial-coloring", "Theta(log* n)"),
        ]
        plans = tuple(
            SeriesPlan(
                problem,
                expected,
                tuple(
                    CellSpec.make("landscape.trees", problem, n, seed=n) for n in ns
                ),
            )
            for problem, expected in series
        )
        return PanelPlan(panel, "LCL landscape on trees", plans)
    if panel == "volume":
        ns = [2**k for k in range(4, 4 + points)]
        series = [
            ("neighborhood-max-degree", "O(1)"),
            ("chain-CV-3-coloring", "Theta(log* n)"),
            ("component-count", "Theta(n)"),
        ]
        plans = tuple(
            SeriesPlan(
                problem,
                expected,
                tuple(
                    CellSpec.make("landscape.volume", problem, n, seed=n) for n in ns
                ),
            )
            for problem, expected in series
        )
        return PanelPlan(panel, "VOLUME landscape on oriented cycles", plans)
    if panel == "grids":
        sides = [4 + 3 * k for k in range(points)]
        series = [
            ("follow-orientation", "O(1)"),
            ("product-CV-coloring", "Theta(log* n)"),
            ("dim0-side-length", "Theta(n^{1/2})"),
        ]
        plans = tuple(
            SeriesPlan(
                problem,
                expected,
                tuple(
                    CellSpec.make(
                        "landscape.grids",
                        problem,
                        side * side,
                        seed=side,
                        params={"side": side},
                    )
                    for side in sides
                ),
            )
            for problem, expected in series
        )
        return PanelPlan(panel, "LCL landscape on oriented 2-d grids", plans)
    raise SupervisorError(
        f"panel {panel!r} is not a measured campaign; known: {MEASURED_PANELS}"
    )


def assemble_panel(plan: PanelPlan, report: CampaignReport) -> LandscapePanel:
    """Assemble the (possibly partial) panel from campaign results.

    A series with at least two intact measurements is fitted from the
    surviving sample points and carries an explicit degradation note
    naming its quarantined cells; a series with fewer becomes a
    :class:`~repro.landscape.QuarantinedRow`.  Either way, quarantined
    cells are *visible holes* — they never feed ``fit_growth`` and never
    count as gap evidence.
    """
    panel = LandscapePanel(plan.title)
    by_id = report.by_id()
    for series in plan.series:
        ns_ok: List[int] = []
        values: List[float] = []
        failures: List[Tuple[CellSpec, Optional[CellResult]]] = []
        for spec in series.cells:
            result = by_id.get(spec.cell_id())
            if result is not None and result.ok:
                ns_ok.append(spec.n)
                values.append(float(result.value))
            else:
                failures.append((spec, result))
        if len(ns_ok) >= 2:
            note = "; ".join(
                f"n={spec.n} quarantined"
                f" ({result.classification if result is not None else 'missing'})"
                for spec, result in failures
            )
            panel.add(series.problem, series.expected, ns_ok, values, note=note)
        else:
            worst = next(
                (result for _, result in failures if result is not None), None
            )
            panel.quarantine(
                series.problem,
                series.expected,
                classification=worst.classification if worst is not None else "lost",
                reason=(
                    worst.reason
                    if worst is not None
                    else "no cell of this series completed"
                ),
                traceback=worst.traceback if worst is not None else "",
            )
    return panel
