"""Supervised campaign execution: retries, quarantine, journal, resume.

:func:`run_campaign` is the production posture for landscape sweeps: a
campaign over many ``(problem, n, seed)`` cells survives any single
cell hanging, OOMing, or raising.  Each cell is attempted up to
``1 + retries`` times (every attempt re-derives its RNG from scratch —
:func:`repro.supervisor.cells.cell_rng` — so a retried cell is
bit-identical to a first-try cell), and a cell that still fails becomes
a ``QUARANTINED`` :class:`~repro.supervisor.cells.CellResult` carrying
its captured traceback and fault classification instead of aborting
the sweep.

With a journal attached, every terminal cell result is appended —
checksummed, flushed, fsynced — before the next cell starts, and
``resume=True`` skips journaled cells entirely, restoring their
recorded values bit-identically.  Interrupting a campaign (crash,
``SIGINT``) therefore loses at most the in-flight cell.

Fault-injection counters (``sim_crash`` / ``sim_hang`` / ``sim_oom``)
are drawn in this process, per attempt, keeping chaos runs
deterministic; ``journal_torn`` fires inside the journal writer.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.exceptions import SupervisorError
from repro.supervisor.backoff import BackoffPolicy, is_transient
from repro.supervisor.cells import (
    STATUS_OK,
    STATUS_QUARANTINED,
    CellResult,
    CellSpec,
)
from repro.supervisor.isolation import (
    AttemptOutcome,
    run_attempt_inline,
    run_attempt_process,
)
from repro.supervisor.journal import CampaignJournal
from repro.utils import env, faults

logger = logging.getLogger(__name__)

ENV_CELL_TIMEOUT = "REPRO_CELL_TIMEOUT"
ENV_CELL_MEM_MB = "REPRO_CELL_MEM_MB"
ENV_CELL_RETRIES = "REPRO_CELL_RETRIES"

#: Isolation modes.
ISOLATE_PROCESS = "process"
ISOLATE_INLINE = "inline"


@dataclass(frozen=True)
class CampaignConfig:
    """Supervision parameters for one campaign run.

    ``None`` fields fall back to the ``REPRO_CELL_*`` environment knobs
    at resolution time.  The configuration shapes *supervision only* —
    timeouts, memory caps, retries, isolation — never cell values, so a
    campaign resumed under a different configuration still restores
    bit-identical results.
    """

    seed: int = 0
    timeout: Optional[float] = None
    mem_mb: Optional[int] = None
    retries: Optional[int] = None
    isolation: str = ISOLATE_PROCESS
    #: Retry backoff shape; ``None`` fields fall back to the
    #: ``REPRO_SCHED_BACKOFF_*`` knobs.  Backoff shapes *when* a retry
    #: fires, never what it computes, so it is supervision (excluded
    #: from :func:`campaign_key`) — but the applied delays are recorded
    #: in each result payload for auditability.
    backoff_base: Optional[float] = None
    backoff_factor: Optional[float] = None
    backoff_max: Optional[float] = None
    backoff_jitter: Optional[float] = None

    def __post_init__(self) -> None:
        if self.isolation not in (ISOLATE_PROCESS, ISOLATE_INLINE):
            raise SupervisorError(
                f"unknown isolation mode {self.isolation!r}; "
                f"use {ISOLATE_PROCESS!r} or {ISOLATE_INLINE!r}"
            )

    def resolved_timeout(self) -> Optional[float]:
        if self.timeout is not None:
            return self.timeout
        return env.get_float(ENV_CELL_TIMEOUT)

    def resolved_mem_mb(self) -> Optional[int]:
        if self.mem_mb is not None:
            return self.mem_mb
        return env.get_int(ENV_CELL_MEM_MB)

    def resolved_retries(self) -> int:
        if self.retries is not None:
            return max(0, self.retries)
        declared = env.get_int(ENV_CELL_RETRIES)
        return max(0, declared if declared is not None else 1)

    def resolved_backoff(self) -> BackoffPolicy:
        return BackoffPolicy.resolved(
            base=self.backoff_base,
            factor=self.backoff_factor,
            max_delay=self.backoff_max,
            jitter=self.backoff_jitter,
        )


@dataclass
class CampaignReport:
    """Every cell's terminal result, in campaign order."""

    results: List[CellResult] = field(default_factory=list)

    @property
    def ok_results(self) -> List[CellResult]:
        return [result for result in self.results if result.ok]

    @property
    def quarantined(self) -> List[CellResult]:
        return [result for result in self.results if result.quarantined]

    @property
    def resumed_count(self) -> int:
        return sum(1 for result in self.results if result.resumed)

    def by_id(self) -> Dict[str, CellResult]:
        return {result.spec.cell_id(): result for result in self.results}

    def values(self) -> Dict[str, Any]:
        """``cell_id -> value`` for the OK cells (the comparable core)."""
        return {result.spec.cell_id(): result.value for result in self.ok_results}

    def summary(self) -> str:
        return (
            f"{len(self.results)} cell(s): {len(self.ok_results)} ok "
            f"({self.resumed_count} resumed), {len(self.quarantined)} quarantined"
        )


def campaign_key(cells: Sequence[CellSpec], seed: int) -> Dict[str, Any]:
    """The journal identity of a campaign: its work, not its supervision.

    Timeouts/retries/isolation are excluded on purpose — re-running an
    interrupted campaign with a longer timeout must find its journal.
    """
    return {"seed": seed, "cells": sorted(spec.cell_id() for spec in cells)}


def open_journal(
    cells: Sequence[CellSpec],
    seed: int = 0,
    directory: Optional[Union[str, os.PathLike]] = None,
) -> CampaignJournal:
    """The journal for this campaign under ``directory`` (or
    ``$REPRO_JOURNAL_DIR``)."""
    return CampaignJournal(campaign_key(cells, seed), directory=directory)


def verify_resume_key(
    journal: CampaignJournal, cells: Sequence[CellSpec], seed: int
) -> None:
    """Refuse to resume from a journal recorded for different work.

    A journal opened via :func:`open_journal` always matches by
    construction, but a hand-constructed :class:`CampaignJournal` (or a
    caller who edited the cell grid or seed after opening one) would
    otherwise silently skip nothing and recompute everything — or
    worse, mix records.  Mismatch is caller confusion, not damage, so
    it raises loudly instead of degrading.
    """
    expected = campaign_key(cells, seed)
    if journal.campaign_key != expected:
        raise SupervisorError(
            f"journal {journal.path.name} was recorded for a different "
            f"campaign (seed/cell grid mismatch); refusing to resume. "
            f"Journal key: {journal.campaign_key!r}; current: {expected!r}"
        )


def _run_attempt(
    spec: CellSpec,
    config: CampaignConfig,
    instructions: Sequence[str],
) -> AttemptOutcome:
    if config.isolation == ISOLATE_INLINE:
        return run_attempt_inline(spec, config.seed, instructions)
    return run_attempt_process(
        spec,
        config.seed,
        timeout=config.resolved_timeout(),
        mem_mb=config.resolved_mem_mb(),
        instructions=instructions,
    )


def retry_delay(
    policy: BackoffPolicy, seed: int, cell_id: str, attempt: int, classification: str
) -> float:
    """The backoff before retrying ``cell_id`` after failed attempt
    ``attempt`` (0-based): the policy's deterministic delay for
    transient failures, ``0.0`` for permanent (``error``) ones, which
    will recur no matter how long we wait."""
    if not is_transient(classification):
        return 0.0
    return policy.delay(seed, cell_id, attempt)


def supervise_cell(spec: CellSpec, config: CampaignConfig) -> CellResult:
    """Run one cell to a terminal result (OK or quarantined), retrying
    up to the configured bound with deterministic seeded backoff."""
    retries = config.resolved_retries()
    policy = config.resolved_backoff()
    delays: List[float] = []
    last = AttemptOutcome(ok=False, classification="lost", reason="never attempted")
    for attempt in range(1 + retries):
        instructions = faults.fire_sim_faults()
        if instructions:
            logger.warning(
                "cell %s attempt %d: injecting %s",
                spec.cell_id(),
                attempt + 1,
                ",".join(instructions),
            )
        last = _run_attempt(spec, config, instructions)
        if last.ok:
            return CellResult(
                spec=spec,
                status=STATUS_OK,
                value=last.value,
                attempts=attempt + 1,
                delays=tuple(delays),
            )
        logger.warning(
            "cell %s attempt %d/%d failed (%s): %s",
            spec.cell_id(),
            attempt + 1,
            1 + retries,
            last.classification,
            last.reason,
        )
        if attempt < retries:
            pause = retry_delay(
                policy, config.seed, spec.cell_id(), attempt, last.classification
            )
            delays.append(pause)
            if pause > 0.0:
                time.sleep(pause)
    return CellResult(
        spec=spec,
        status=STATUS_QUARANTINED,
        attempts=1 + retries,
        classification=last.classification,
        reason=last.reason,
        traceback=last.traceback,
        delays=tuple(delays),
    )


def run_campaign(
    cells: Sequence[CellSpec],
    config: Optional[CampaignConfig] = None,
    journal: Optional[CampaignJournal] = None,
    resume: bool = False,
) -> CampaignReport:
    """Run every cell to a terminal result; never abort the sweep.

    With ``resume=True`` (requires a journal), cells already recorded in
    the journal are restored — values bit-identical, no recomputation —
    and only the remainder runs.  ``KeyboardInterrupt`` is deliberately
    *not* swallowed: every completed cell is already journaled, so an
    interrupt costs at most the in-flight cell and the campaign resumes
    from the journal.
    """
    config = config if config is not None else CampaignConfig()
    if resume and journal is None:
        raise SupervisorError("resume requested without a journal")
    if resume and journal is not None:
        verify_resume_key(journal, cells, config.seed)
    completed: Dict[str, Dict[str, Any]] = {}
    if resume and journal is not None:
        completed = journal.completed_cells()
        if completed:
            logger.info(
                "journal %s: resuming %d completed cell(s)",
                journal.path.name,
                len(completed),
            )
    if journal is not None:
        journal.ensure_header()
    report = CampaignReport()
    for spec in cells:
        recorded = completed.get(spec.cell_id())
        if recorded is not None:
            report.results.append(CellResult.from_payload(recorded))
            continue
        result = supervise_cell(spec, config)
        if journal is not None:
            journal.append_cell(result.payload())
        report.results.append(result)
    logger.info("campaign finished: %s", report.summary())
    return report
