"""Deterministic seeded retry backoff for supervised cells.

Before this module, ``supervise_cell`` fired attempt ``N+1`` immediately
after a failure — correct, but hostile to the very hosts the retry is
trying to outlive: a transiently-OOMing or overloaded machine gets
hammered with back-to-back re-executions.  This module adds the missing
pause, with two properties the supervisor's contracts demand:

* **Deterministic.**  Every delay is a pure function of
  ``(campaign seed, cell id, attempt index)`` via the same
  :class:`~repro.utils.rng.SplittableRNG` derivation the cells use, so
  a replayed campaign backs off for exactly the same durations and the
  recorded ``delays`` in a :class:`~repro.supervisor.cells.CellResult`
  payload are auditable against the seed.  No global RNG state is
  consumed.
* **Transience-aware.**  The quarantine taxonomy
  (:data:`repro.supervisor.cells.CLASSIFICATIONS`) splits into
  *transient* kinds — ``timeout`` / ``oom`` / ``signal`` / ``lost``,
  environmental failures that a pause genuinely helps — and the
  *permanent* kind ``error``, a deterministic exception from the cell
  body that will recur no matter how long we wait.  Permanent failures
  are still retried (an injected ``sim_crash`` classifies as ``error``
  and must stay recoverable) but without any delay, recorded as ``0.0``.

The policy is exponential with multiplicative jitter: attempt ``k``
waits ``min(max_delay, base * factor**k)`` scaled by a deterministic
draw in ``[1 - jitter, 1]``.  The ``REPRO_SCHED_BACKOFF_*`` knobs
(:mod:`repro.utils.env`) configure the defaults; the multi-worker
scheduler (:mod:`repro.scheduler`) reuses the identical policy, turning
delays into not-before dispatch times instead of sleeps so a waiting
cell never blocks a worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils import env
from repro.utils.rng import SplittableRNG

ENV_BACKOFF_BASE = "REPRO_SCHED_BACKOFF_BASE"
ENV_BACKOFF_FACTOR = "REPRO_SCHED_BACKOFF_FACTOR"
ENV_BACKOFF_MAX = "REPRO_SCHED_BACKOFF_MAX"
ENV_BACKOFF_JITTER = "REPRO_SCHED_BACKOFF_JITTER"

#: Quarantine classifications worth waiting out: the fault lives in the
#: environment (a hung host, a memory spike, an OOM-killer pass), not in
#: the cell body, so the next attempt has a real chance after a pause.
TRANSIENT_CLASSIFICATIONS = ("timeout", "oom", "signal", "lost")


def is_transient(classification: str) -> bool:
    """Whether a quarantine classification names an environmental
    (retry-with-backoff) failure rather than a deterministic one."""
    return classification in TRANSIENT_CLASSIFICATIONS


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic multiplicative jitter.

    ``None`` fields fall back to the ``REPRO_SCHED_BACKOFF_*`` knobs at
    resolution time (:func:`BackoffPolicy.resolved`).  A resolved policy
    with ``base == 0`` disables backoff entirely (every delay is 0.0) —
    the escape hatch for latency-sensitive tests.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base < 0 or self.factor < 1.0 or self.max_delay < 0:
            raise ValueError(
                f"backoff needs base >= 0, factor >= 1, max >= 0; got "
                f"base={self.base}, factor={self.factor}, max={self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"backoff jitter must be in [0, 1], got {self.jitter}")

    @staticmethod
    def resolved(
        base: Optional[float] = None,
        factor: Optional[float] = None,
        max_delay: Optional[float] = None,
        jitter: Optional[float] = None,
    ) -> "BackoffPolicy":
        """A policy from explicit values, with ``None`` fields read from
        the ``REPRO_SCHED_BACKOFF_*`` environment knobs."""

        def pick(value: Optional[float], knob: str) -> float:
            if value is not None:
                return float(value)
            declared = env.get_float(knob)
            assert declared is not None  # every knob declares a default
            return declared

        return BackoffPolicy(
            base=pick(base, ENV_BACKOFF_BASE),
            factor=pick(factor, ENV_BACKOFF_FACTOR),
            max_delay=pick(max_delay, ENV_BACKOFF_MAX),
            jitter=pick(jitter, ENV_BACKOFF_JITTER),
        )

    def delay(self, campaign_seed: int, cell_id: str, attempt: int) -> float:
        """The pause before retrying ``cell_id`` after failed attempt
        ``attempt`` (0-based) — a pure function of its arguments.

        The jitter draw comes from the campaign RNG tree
        (``SplittableRNG(seed).child("backoff", cell_id, attempt)``), so
        it is independent of the cell's own measurement stream and of
        every other cell's backoff.
        """
        if self.base <= 0.0:
            return 0.0
        raw = min(self.max_delay, self.base * (self.factor ** attempt))
        if self.jitter <= 0.0:
            return raw
        draw = (
            SplittableRNG(campaign_seed).child("backoff", cell_id, attempt).seed
            / float(1 << 64)
        )
        return raw * (1.0 - self.jitter * draw)
