"""Crash isolation: run one cell in a supervised subprocess.

Each attempt of a cell runs in its own forked child with

* a wall-clock timeout enforced from the parent (the child is
  terminated, then killed, when it stalls — a hung simulation can cost
  at most one cell-timeout, never the campaign);
* an optional address-space cap applied via ``resource.setrlimit``
  inside the child before any cell code runs, so a memory blow-up dies
  as a containable ``MemoryError`` (or, at worst, a killed child)
  instead of taking the campaign process down with it;
* simulator-level fault *instructions* decided by the parent
  (:func:`repro.utils.faults.fire_sim_faults`) and executed by the
  child (:func:`repro.utils.faults.execute_sim_fault`), which keeps the
  deterministic occurrence counters in a single process.

The child reports through a one-way pipe: ``("ok", value)`` or
``("fail", classification, reason, traceback)``.  A child that dies
without reporting is classified from its exit code (``signal`` for a
signal death, ``lost`` otherwise).

An ``inline`` mode runs the cell in-process with the same structured
outcome — the supervisor's clean-serial baseline and the fast path for
trusted local runs.  Inline cells skip ``sim_hang`` instructions (there
is no kill path to rescue the process) but honor ``sim_crash`` and
``sim_oom``.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import traceback as traceback_module
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.supervisor.cells import CellSpec, cell_rng, resolve_runner

logger = logging.getLogger(__name__)

#: Grace period for a terminated child before escalating to SIGKILL.
_TERMINATE_GRACE_SECONDS = 1.0


@dataclass
class AttemptOutcome:
    """What one attempt of one cell produced."""

    ok: bool
    value: Any = None
    classification: str = ""
    reason: str = ""
    traceback: str = ""


def _apply_memory_cap(mem_mb: Optional[int]) -> None:
    if mem_mb is None:
        return
    try:
        import resource

        limit = int(mem_mb) * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ImportError, ValueError, OSError) as error:  # pragma: no cover
        logger.warning("could not apply %d MiB memory cap: %s", mem_mb, error)


def _execute(
    spec_payload: dict,
    campaign_seed: int,
    instructions: Sequence[str],
) -> Tuple[Any, ...]:
    """Run the cell body; shared by the child entry and inline mode."""
    from repro.supervisor.cells import CellSpec as Spec
    from repro.utils import faults

    spec = Spec.from_payload(spec_payload)
    try:
        for index, kind in enumerate(instructions):
            faults.execute_sim_fault(kind, index)
        runner = resolve_runner(spec.runner)
        value = runner(spec, cell_rng(campaign_seed, spec))
        return ("ok", value)
    except MemoryError as error:
        return ("fail", "oom", f"MemoryError: {error}", traceback_module.format_exc())
    except Exception as error:
        return (
            "fail",
            "error",
            f"{type(error).__name__}: {error}",
            traceback_module.format_exc(),
        )


def _child_entry(
    conn: multiprocessing.connection.Connection,
    spec_payload: dict,
    campaign_seed: int,
    mem_mb: Optional[int],
    instructions: Sequence[str],
) -> None:  # pragma: no cover - exercised via subprocesses in tests
    _apply_memory_cap(mem_mb)
    try:
        message = _execute(spec_payload, campaign_seed, instructions)
    except MemoryError:
        # Allocation failed even while *building* the failure record:
        # report the bare minimum.
        message = ("fail", "oom", "MemoryError", "")
    try:
        conn.send(message)
    finally:
        conn.close()


def run_attempt_inline(
    spec: CellSpec,
    campaign_seed: int,
    instructions: Sequence[str] = (),
) -> AttemptOutcome:
    """Run one attempt in-process (clean-serial baseline / fast path)."""
    effective = []
    for kind in instructions:
        if kind == "sim_hang":
            logger.warning(
                "inline cell %s: skipping sim_hang instruction (no kill path)",
                spec.cell_id(),
            )
            continue
        effective.append(kind)
    message = _execute(spec.payload(), campaign_seed, effective)
    if message[0] == "ok":
        return AttemptOutcome(ok=True, value=message[1])
    return AttemptOutcome(
        ok=False,
        classification=message[1],
        reason=message[2],
        traceback=message[3],
    )


def run_attempt_process(
    spec: CellSpec,
    campaign_seed: int,
    timeout: Optional[float],
    mem_mb: Optional[int],
    instructions: Sequence[str] = (),
) -> AttemptOutcome:
    """Run one attempt in a supervised subprocess."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context("spawn")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_child_entry,
        args=(child_conn, spec.payload(), campaign_seed, mem_mb, tuple(instructions)),
        daemon=True,
    )
    process.start()
    child_conn.close()
    message: Optional[Tuple[Any, ...]] = None
    timed_out = False
    try:
        if parent_conn.poll(timeout):
            try:
                message = parent_conn.recv()
            except (EOFError, OSError):
                message = None
        else:
            timed_out = True
    finally:
        parent_conn.close()
        if timed_out:
            process.terminate()
        process.join(_TERMINATE_GRACE_SECONDS)
        if process.is_alive():  # pragma: no cover - stubborn child
            process.kill()
            process.join()

    if message is not None and message[0] == "ok":
        return AttemptOutcome(ok=True, value=message[1])
    if message is not None:
        return AttemptOutcome(
            ok=False,
            classification=str(message[1]),
            reason=str(message[2]),
            traceback=str(message[3]),
        )
    if timed_out:
        return AttemptOutcome(
            ok=False,
            classification="timeout",
            reason=f"cell exceeded its {timeout}s wall-clock cap and was killed",
        )
    exitcode = process.exitcode
    if exitcode is not None and exitcode < 0:
        return AttemptOutcome(
            ok=False,
            classification="signal",
            reason=f"cell subprocess died on signal {-exitcode}",
        )
    return AttemptOutcome(
        ok=False,
        classification="lost",
        reason=f"cell subprocess exited (code {exitcode}) without reporting",
    )
