"""Cell specifications, results, and the cell-runner registry.

A landscape or benchmark *campaign* is a grid of independent simulation
**cells** — one ``(runner, problem, n, seed)`` measurement each.  Cells
are the supervisor's unit of isolation, retry, journaling, and
quarantine: a cell either produces a JSON-serializable value
(``status == OK``) or a structured failure record (``status ==
QUARANTINED``) carrying its captured traceback and fault
classification.  Campaigns never see raw exceptions.

Runners are plain module-level functions registered by name
(:func:`register_runner`), so a cell can be described by data alone and
re-resolved inside an isolated subprocess — nothing in a
:class:`CellSpec` needs to be picklable beyond primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.exceptions import SupervisorError
from repro.utils.rng import SplittableRNG

#: Terminal cell statuses.
STATUS_OK = "OK"
STATUS_QUARANTINED = "QUARANTINED"

#: Quarantine fault taxonomy (every quarantined cell carries one):
#:
#: ``error``
#:     the cell raised — the traceback is attached;
#: ``timeout``
#:     the cell exceeded its wall-clock cap and was killed;
#: ``oom``
#:     the cell exhausted its memory cap (``MemoryError`` under the
#:     ``resource.setrlimit`` address-space limit, or an injected
#:     ``sim_oom``);
#: ``signal``
#:     the cell subprocess died on a signal (segfault, OOM-killer,
#:     hard ``os._exit``) without reporting;
#: ``lost``
#:     the cell subprocess exited without delivering a result for any
#:     other reason.
CLASSIFICATIONS = ("error", "timeout", "oom", "signal", "lost")

#: A cell runner: ``(spec, rng) -> JSON-serializable value``.
CellRunner = Callable[["CellSpec", SplittableRNG], Any]

_RUNNERS: Dict[str, CellRunner] = {}


def register_runner(name: str) -> Callable[[CellRunner], CellRunner]:
    """Register a module-level function as a named cell runner."""

    def decorate(fn: CellRunner) -> CellRunner:
        existing = _RUNNERS.get(name)
        if existing is not None and existing is not fn:
            raise SupervisorError(f"cell runner {name!r} registered twice")
        _RUNNERS[name] = fn
        return fn

    return decorate


def resolve_runner(name: str) -> CellRunner:
    """Look up a registered runner (importing the built-in measurement
    runners on first use, so journal-driven resumes work from a cold
    interpreter)."""
    if name not in _RUNNERS:
        from repro.supervisor import measurements  # noqa: F401  (registers)
    runner = _RUNNERS.get(name)
    if runner is None:
        known = ", ".join(sorted(_RUNNERS))
        raise SupervisorError(f"unknown cell runner {name!r}; known: {known}")
    return runner


@dataclass(frozen=True)
class CellSpec:
    """One supervised unit of work: a single ``(problem, n, seed)`` cell."""

    runner: str
    problem: str
    n: int
    seed: int
    #: Extra runner parameters, kept sorted for a canonical identity.
    params: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(
        runner: str,
        problem: str,
        n: int,
        seed: int,
        params: Optional[Mapping[str, Any]] = None,
    ) -> "CellSpec":
        items = tuple(sorted((params or {}).items()))
        return CellSpec(runner=runner, problem=problem, n=n, seed=seed, params=items)

    def cell_id(self) -> str:
        """Canonical identity used for journaling and RNG derivation."""
        extra = "".join(f",{key}={value!r}" for key, value in self.params)
        return f"{self.runner}:{self.problem}:n={self.n}:seed={self.seed}{extra}"

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def payload(self) -> Dict[str, Any]:
        return {
            "runner": self.runner,
            "problem": self.problem,
            "n": self.n,
            "seed": self.seed,
            "params": [[key, value] for key, value in self.params],
        }

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "CellSpec":
        return CellSpec(
            runner=str(payload["runner"]),
            problem=str(payload["problem"]),
            n=int(payload["n"]),
            seed=int(payload["seed"]),
            params=tuple((str(k), v) for k, v in payload.get("params", [])),
        )


@dataclass
class CellResult:
    """Terminal outcome of one supervised cell."""

    spec: CellSpec
    status: str
    value: Any = None
    attempts: int = 1
    classification: str = ""
    reason: str = ""
    traceback: str = ""
    #: Backoff delays (seconds) applied before each retry attempt, in
    #: attempt order — deterministic, so replays stay auditable.
    delays: Tuple[float, ...] = ()
    #: Whether this result was restored from a journal rather than run.
    resumed: bool = field(default=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def quarantined(self) -> bool:
        return self.status == STATUS_QUARANTINED

    def payload(self) -> Dict[str, Any]:
        return {
            "cell": self.spec.cell_id(),
            "spec": self.spec.payload(),
            "status": self.status,
            "value": self.value,
            "attempts": self.attempts,
            "classification": self.classification,
            "reason": self.reason,
            "traceback": self.traceback,
            "delays": list(self.delays),
        }

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "CellResult":
        return CellResult(
            spec=CellSpec.from_payload(payload["spec"]),
            status=str(payload["status"]),
            value=payload.get("value"),
            attempts=int(payload.get("attempts", 1)),
            classification=str(payload.get("classification", "")),
            reason=str(payload.get("reason", "")),
            traceback=str(payload.get("traceback", "")),
            delays=tuple(float(d) for d in payload.get("delays", [])),
            resumed=True,
        )


def cell_rng(campaign_seed: int, spec: CellSpec) -> SplittableRNG:
    """The cell's RNG, a pure function of ``(campaign seed, cell id)``.

    Rebuilt from scratch for *every* attempt — the SplittableRNG
    discipline: no generator state survives a crashed attempt, so a
    retried cell is bit-identical to a first-try cell, which is what
    makes faulty-run-plus-resume comparable to a clean serial run.
    """
    return SplittableRNG(campaign_seed).child("cell", spec.cell_id())
