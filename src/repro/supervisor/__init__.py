"""Supervised, crash-isolated simulation campaigns.

The measurement half of the reproduction — landscape sweeps over the
problem catalog, the ``benchmarks/`` campaigns — runs many independent
``(problem, n, seed)`` cells, any one of which can hang, OOM, or raise.
This package makes the *pipeline* as fault-tolerant as the
round-elimination engine underneath it:

* :mod:`repro.supervisor.cells` — cell specs/results, the quarantine
  taxonomy, and the named cell-runner registry;
* :mod:`repro.supervisor.isolation` — per-cell subprocess isolation
  with wall-clock timeouts and ``resource.setrlimit`` memory caps;
* :mod:`repro.supervisor.journal` — the append-only, checksummed JSONL
  run journal (torn lines degrade to recomputation, never to a wrong
  resume);
* :mod:`repro.supervisor.campaign` — bounded deterministic retries,
  structured quarantine, journaled resume;
* :mod:`repro.supervisor.measurements` — the built-in landscape panel
  runners (``lcl-landscape landscape --journal/--resume``).

The chaos contract (enforced by ``tests/test_supervisor_chaos.py`` and
the CI chaos job): a campaign run under injected ``sim_crash`` /
``sim_hang`` / ``journal_torn`` faults, interrupted and resumed via the
journal, yields per-cell results **bit-identical** to a clean serial
run, with every unrecoverable cell surfaced as a ``QUARANTINED`` row.
"""

from repro.supervisor.campaign import (
    CampaignConfig,
    CampaignReport,
    campaign_key,
    open_journal,
    run_campaign,
    supervise_cell,
)
from repro.supervisor.cells import (
    CLASSIFICATIONS,
    STATUS_OK,
    STATUS_QUARANTINED,
    CellResult,
    CellSpec,
    cell_rng,
    register_runner,
    resolve_runner,
)
from repro.supervisor.journal import CampaignJournal, default_journal_dir

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CampaignJournal",
    "CellResult",
    "CellSpec",
    "CLASSIFICATIONS",
    "STATUS_OK",
    "STATUS_QUARANTINED",
    "campaign_key",
    "cell_rng",
    "default_journal_dir",
    "open_journal",
    "register_runner",
    "resolve_runner",
    "run_campaign",
    "supervise_cell",
]
