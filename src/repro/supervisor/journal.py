"""Append-only, checksummed JSONL run journal for campaigns.

The journal is the campaign analogue of
:mod:`repro.roundelim.checkpoint`, adapted to a *stream* of independent
cell results rather than a single snapshot:

* one line per record, appended with flush + fsync, so a crash or
  ``SIGINT`` loses at most the line being written;
* every line is independently checksummed (``{"body": ..., "checksum":
  sha256(canonical body)}``) — a torn or bit-rotted line is *detected*
  and skipped on load, and because lines are independent, damage to one
  cell record never invalidates the records after it (the damaged cell
  is simply recomputed on resume);
* the file name is keyed by a digest of the campaign configuration
  (cells, runner names, supervision options), so journals from
  different campaigns never intermix and a resume against a changed
  campaign starts a fresh file rather than mis-restoring;
* the first line is a header echoing the campaign key; a header
  mismatch (hash collision, hand-edited file) discards the journal
  loudly rather than trusting it.

Fault injection: the ``journal_torn`` kind
(:mod:`repro.utils.faults`) truncates an appended line mid-write, and
the chaos suite asserts that a resume after such damage still yields
results bit-identical to a clean serial run.
"""

from __future__ import annotations

import json
import logging
import os
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import SupervisorError
from repro.utils import env, faults

logger = logging.getLogger(__name__)

SCHEMA_VERSION = 1
ENV_JOURNAL_DIR = "REPRO_JOURNAL_DIR"

#: Record kinds appearing in a journal.
KIND_HEADER = "header"
KIND_CELL = "cell"


def default_journal_dir() -> Optional[Path]:
    """``$REPRO_JOURNAL_DIR`` as a path, or ``None`` when unset."""
    raw = env.get_str(ENV_JOURNAL_DIR)
    return Path(raw) if raw else None


def _checksum(body: Dict[str, Any]) -> str:
    return sha256(
        json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    ).hexdigest()


def _entry_text(body: Dict[str, Any]) -> str:
    """One canonical journal line (checksummed entry + newline).

    Shared by the single-writer journal, the scheduler's per-worker
    shard writers, and the finalizing rewrite — the *same* body always
    serializes to the *same* bytes, which is what makes a merged
    multi-worker journal byte-comparable to a clean serial one.
    """
    entry = {"body": body, "checksum": _checksum(body)}
    return json.dumps(entry, separators=(",", ":"), sort_keys=True) + "\n"


def _parse_records(raw: str, name: str) -> List[Dict[str, Any]]:
    """Every intact record body in ``raw``, in append order.

    Damaged lines (torn writes, bit rot, merged stumps) are skipped with
    a warning; they can only ever cost recomputation.
    """
    bodies: List[Dict[str, Any]] = []
    damaged = 0
    for index, line in enumerate(raw.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
            body = entry["body"]
            if entry.get("checksum") != _checksum(body):
                raise ValueError("line checksum mismatch")
            if body.get("schema") != SCHEMA_VERSION:
                raise ValueError(f"unsupported schema {body.get('schema')!r}")
        except (ValueError, KeyError, TypeError) as error:
            damaged += 1
            logger.warning(
                "journal %s: skipping damaged line %d (%s)", name, index, error
            )
            continue
        bodies.append(body)
    if damaged:
        logger.warning(
            "journal %s: %d damaged line(s) skipped; affected cells "
            "will be recomputed",
            name,
            damaged,
        )
    return bodies


def load_cell_records(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Every intact *cell* record body in a journal-format file, in
    append order — the shard-merge reader (shards carry no header)."""
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError:
        return []
    return [
        body
        for body in _parse_records(raw, Path(path).name)
        if body.get("kind") == KIND_CELL and "cell" in body
    ]


class ShardWriter:
    """Append-only cell record writer for one scheduler worker.

    Deliberately *not* a :class:`CampaignJournal`: it takes an explicit
    path and reads no environment, so it is safe to construct inside a
    forked worker process (the parent-scoped ``REPRO_JOURNAL_DIR`` knob
    is resolved once, in the scheduler parent).  Records use the exact
    canonical line format of the main journal, so merging a shard is a
    byte-level copy of its intact lines.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)

    def append_cell(self, payload: Dict[str, Any]) -> None:
        """Append one completed cell record with flush + fsync, so the
        record durably exists *before* the worker reports completion."""
        body = dict(payload)
        body["kind"] = KIND_CELL
        body["schema"] = SCHEMA_VERSION
        text = faults.corrupt_text("journal_torn", _entry_text(body))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())


class CampaignJournal:
    """One campaign's append-only JSONL journal under a directory."""

    def __init__(
        self,
        campaign_key: Dict[str, Any],
        directory: Optional[Union[str, os.PathLike]] = None,
    ):
        resolved = Path(directory) if directory else default_journal_dir()
        if resolved is None:
            raise SupervisorError(
                f"no journal directory: pass one or set ${ENV_JOURNAL_DIR}"
            )
        self.directory = resolved
        self.directory.mkdir(parents=True, exist_ok=True)
        self.campaign_key = campaign_key
        digest = _checksum({"campaign": campaign_key, "schema": SCHEMA_VERSION})
        self.digest = digest
        self.path = self.directory / f"run-{digest[:40]}.jsonl"

    # -- writing -------------------------------------------------------------
    def _append_line(self, body: Dict[str, Any]) -> None:
        # A torn write truncates the line *and* loses the newline, just
        # like a real mid-write kill; the next append concatenates onto
        # the stump and both lines fail their checksums on load.
        text = faults.corrupt_text("journal_torn", _entry_text(body))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())

    def ensure_header(self) -> None:
        """Write the header line if the journal file is new/empty."""
        if self.path.exists() and self.path.stat().st_size > 0:
            return
        self._append_line(
            {
                "kind": KIND_HEADER,
                "schema": SCHEMA_VERSION,
                "campaign": self.campaign_key,
            }
        )

    def append_cell(self, payload: Dict[str, Any]) -> None:
        """Append one completed cell record (OK or quarantined)."""
        self.ensure_header()
        body = dict(payload)
        body["kind"] = KIND_CELL
        body["schema"] = SCHEMA_VERSION
        self._append_line(body)

    # -- reading -------------------------------------------------------------
    def load(self) -> List[Dict[str, Any]]:
        """Every intact record body, in append order.

        Damaged lines (torn writes, bit rot, merged stumps) are skipped
        with a warning; they can only ever cost recomputation.  A journal
        whose *header* is intact but names a different campaign raises
        :class:`SupervisorError` — that is caller confusion, not damage.
        """
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        bodies: List[Dict[str, Any]] = []
        for body in _parse_records(raw, self.path.name):
            if body.get("kind") == KIND_HEADER:
                if body.get("campaign") != self.campaign_key:
                    raise SupervisorError(
                        f"journal {self.path} belongs to a different campaign"
                    )
                continue
            bodies.append(body)
        return bodies

    def completed_cells(self) -> Dict[str, Dict[str, Any]]:
        """``cell_id -> record body`` for every intact cell record.

        Later records win (a cell re-run after a damaged journal line
        appends a fresh record rather than rewriting the file).
        """
        completed: Dict[str, Dict[str, Any]] = {}
        for body in self.load():
            if body.get("kind") == KIND_CELL and "cell" in body:
                completed[str(body["cell"])] = body
        return completed

    def delete(self) -> None:
        """Remove the journal file (e.g. after a fully clean campaign)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    # -- scheduler shards ----------------------------------------------------
    def shard_path(self, shard_id: int) -> Path:
        """The per-worker shard file for ``shard_id`` — same directory
        and digest key as the canonical journal, so shards from
        different campaigns never intermix either."""
        return self.directory / f"run-{self.digest[:40]}.shard-{shard_id:03d}.jsonl"

    def shard_paths(self) -> List[Path]:
        """Every existing shard file for this campaign, sorted by name
        (i.e. by shard id) for a deterministic merge order."""
        pattern = f"run-{self.digest[:40]}.shard-*.jsonl"
        return sorted(self.directory.glob(pattern))

    def delete_shards(self) -> None:
        """Remove every shard file (after a merge, or when starting a
        scheduled campaign from scratch)."""
        for path in self.shard_paths():
            try:
                path.unlink()
            except OSError:
                pass

    def rewrite_cells(self, payloads: List[Dict[str, Any]]) -> None:
        """Atomically replace the journal with a header plus ``payloads``
        in the given order.

        The scheduler's finalize step: workers complete cells in a
        timing-dependent order across shards, and this rewrite puts the
        merged records back into canonical campaign order so the final
        file is byte-identical to one written by a clean serial
        :func:`~repro.supervisor.campaign.run_campaign`.  Write-to-temp
        plus ``os.replace`` keeps the journal crash-safe: a kill during
        finalize leaves the old journal (and the shards) intact.
        """
        lines = [
            _entry_text(
                {
                    "kind": KIND_HEADER,
                    "schema": SCHEMA_VERSION,
                    "campaign": self.campaign_key,
                }
            )
        ]
        for payload in payloads:
            body = dict(payload)
            body["kind"] = KIND_CELL
            body["schema"] = SCHEMA_VERSION
            lines.append(_entry_text(body))
        temp = self.path.with_suffix(".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write("".join(lines))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
