"""Standalone JSON codec for node-edge-checkable LCL problems.

The certification subsystem (:mod:`repro.verify`) needs to embed whole
problems inside certificates such that an *independent* checker — one
that deliberately does not import the round-elimination engine — can
rebuild them bit-identically.  The operator-cache codec in
:mod:`repro.roundelim.canonical` is unsuitable for that: it encodes
results *relative to a base problem's canonical order*, so decoding
requires the canonicalization machinery.  This codec is self-contained:
labels are serialized by structure (strings, ints, bools, ``None``,
tuples, and the nested frozensets produced by round elimination), and a
decoded problem compares ``==`` to the original, label for label.

The digest (:func:`problem_digest`) is a SHA-256 over the canonical JSON
rendering of the encoding — a *spelling-sensitive* integrity hash (two
differently-labeled isomorphic problems digest differently), which is
exactly what a tamper-evident certificate wants.
"""

from __future__ import annotations

import json
from hashlib import sha256
from typing import Any, Dict, List

from repro.exceptions import CertificateError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.multiset import Multiset, label_sort_key


def encode_label(label: Any) -> list:
    """A JSON-able tagged encoding of one label.

    Supports the label types that actually occur in the pipeline: plain
    strings/ints/bools/``None``, tuples (Lemma 2.6 transcripts), and
    arbitrarily nested frozensets (round-elimination output).  Raises
    :class:`~repro.exceptions.CertificateError` for anything else.
    """
    if isinstance(label, bool):  # before int: bool is an int subclass
        return ["B", label]
    if isinstance(label, str):
        return ["s", label]
    if isinstance(label, int):
        return ["i", label]
    if label is None:
        return ["n"]
    if isinstance(label, frozenset):
        return ["f", [encode_label(x) for x in sorted(label, key=label_sort_key)]]
    if isinstance(label, tuple):
        return ["t", [encode_label(x) for x in label]]
    raise CertificateError(
        f"label {label!r} of type {type(label).__qualname__} cannot be "
        "serialized into a certificate"
    )


def decode_label(encoded: Any) -> Any:
    """Inverse of :func:`encode_label` (bit-identical labels)."""
    try:
        tag = encoded[0]
        if tag == "B":
            return bool(encoded[1])
        if tag == "s":
            return str(encoded[1])
        if tag == "i":
            return int(encoded[1])
        if tag == "n":
            return None
        if tag == "f":
            return frozenset(decode_label(x) for x in encoded[1])
        if tag == "t":
            return tuple(decode_label(x) for x in encoded[1])
    except (TypeError, IndexError, KeyError) as error:
        raise CertificateError(f"malformed label encoding {encoded!r}") from error
    raise CertificateError(f"unknown label tag {encoded!r}")


def encode_problem(problem: NodeEdgeCheckableLCL) -> Dict[str, Any]:
    """Serialize a problem into a deterministic, JSON-able dictionary.

    Alphabets and configurations are emitted in ``label_sort_key`` order,
    so equal problems always produce identical encodings (and therefore
    identical digests) regardless of construction order.
    """
    sigma_out = sorted(problem.sigma_out, key=label_sort_key)
    sigma_in = sorted(problem.sigma_in, key=label_sort_key)
    out_index = {label: i for i, label in enumerate(sigma_out)}
    return {
        "v": 1,
        "name": problem.name,
        "sigma_in": [encode_label(label) for label in sigma_in],
        "sigma_out": [encode_label(label) for label in sigma_out],
        "node": [
            [
                degree,
                sorted(sorted(out_index[x] for x in c.items) for c in configurations),
            ]
            for degree, configurations in sorted(problem.node_constraints.items())
        ],
        "edge": sorted(
            sorted(out_index[x] for x in c.items) for c in problem.edge_constraint
        ),
        "g": [
            sorted(out_index[x] for x in problem.g[input_label])
            for input_label in sigma_in
        ],
    }


def decode_problem(payload: Dict[str, Any]) -> NodeEdgeCheckableLCL:
    """Rebuild a problem from :func:`encode_problem` output.

    The result is ``==`` to the original (same labels, same constraints,
    same name).  Raises :class:`~repro.exceptions.CertificateError` on
    structurally corrupt payloads.
    """
    try:
        if payload.get("v") != 1:
            raise CertificateError(
                f"unsupported problem encoding version {payload.get('v')!r}"
            )
        sigma_in = [decode_label(x) for x in payload["sigma_in"]]
        sigma_out: List[Any] = [decode_label(x) for x in payload["sigma_out"]]
        node_constraints = {
            int(degree): [Multiset(sigma_out[i] for i in c) for c in configurations]
            for degree, configurations in payload["node"]
        }
        edge_constraint = [Multiset(sigma_out[i] for i in c) for c in payload["edge"]]
        if len(payload["g"]) != len(sigma_in):
            raise CertificateError("problem encoding g-table has wrong arity")
        g = {
            input_label: frozenset(sigma_out[i] for i in indices)
            for input_label, indices in zip(sigma_in, payload["g"])
        }
        name = str(payload.get("name", "decoded"))
    except CertificateError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise CertificateError(f"corrupt problem encoding: {error}") from error
    return NodeEdgeCheckableLCL(
        sigma_in=sigma_in,
        sigma_out=sigma_out,
        node_constraints=node_constraints,
        edge_constraint=edge_constraint,
        g=g,
        name=name,
    )


def problem_digest(problem: NodeEdgeCheckableLCL) -> str:
    """SHA-256 integrity digest of the problem's exact encoding."""
    return sha256(
        json.dumps(encode_problem(problem), separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
    ).hexdigest()
