"""A catalog of concrete LCL problems in node-edge-checkable form.

These are the standard benchmark problems of the LCL literature, encoded
exactly as §2.1 prescribes (half-edge labels; node/edge constraints; ``g``
for input-dependent problems):

* symmetry breaking (class Θ(log* n) on trees): proper ``k``-coloring,
  maximal independent set, maximal matching, weak coloring;
* the round-elimination classic sinkless orientation (the canonical
  fixed point, Ω(log log n) randomized / Ω(log n) deterministic);
* O(1)-class problems (trivial and consensus-style);
* problems *with inputs* — the paper's round-elimination extension is
  specifically about these: list-coloring-style restrictions and the
  ``echo`` family (copy the input across an edge), which need exactly
  ``k`` rounds and exercise the Lemma 3.9 lifting nontrivially;
* global problems (proper 2-coloring) for the decidability fragment.

All constructors take ``max_degree`` (the Δ of the graph class) and return
:class:`~repro.lcl.nec.NodeEdgeCheckableLCL` instances whose node
constraints cover all degrees ``1 .. Δ`` unless a problem deliberately
forbids some degrees.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, List, Sequence, Tuple

from repro.exceptions import ProblemDefinitionError
from repro.lcl.nec import NodeEdgeCheckableLCL, all_multisets
from repro.utils.multiset import Multiset

#: The conventional single input label for problems "without inputs".
NO_INPUT = "*"


def _no_input_g(sigma_out: Iterable[Any]) -> dict:
    return {NO_INPUT: frozenset(sigma_out)}


# --------------------------------------------------------------------- O(1)
def trivial(max_degree: int, labels: Sequence[str] = ("T",)) -> NodeEdgeCheckableLCL:
    """Everything is allowed: the archetypal 0-round problem."""
    labels = tuple(labels)
    return NodeEdgeCheckableLCL(
        sigma_in=[NO_INPUT],
        sigma_out=labels,
        node_constraints={
            d: all_multisets(labels, d) for d in range(1, max_degree + 1)
        },
        edge_constraint=all_multisets(labels, 2),
        g=_no_input_g(labels),
        name="trivial",
    )


def consensus(max_degree: int, values: Sequence[str] = ("0", "1")) -> NodeEdgeCheckableLCL:
    """All half-edges of the graph must carry one common value.

    Each node must be internally constant and each edge monochromatic, so
    any connected component is forced to a single value.  0-round solvable
    (every node deterministically picks the same canonical value), despite
    *looking* global — a useful sanity case for the A_det construction.
    """
    values = tuple(values)
    return NodeEdgeCheckableLCL(
        sigma_in=[NO_INPUT],
        sigma_out=values,
        node_constraints={
            d: [Multiset([v] * d) for v in values] for d in range(1, max_degree + 1)
        },
        edge_constraint=[Multiset([v, v]) for v in values],
        g=_no_input_g(values),
        name="consensus",
    )


# ------------------------------------------------------------- Θ(log* n) class
def coloring(num_colors: int, max_degree: int) -> NodeEdgeCheckableLCL:
    """Proper ``num_colors``-coloring of nodes.

    A node copies its color to all incident half-edges; an edge must see
    two distinct colors.  For ``num_colors >= Δ + 1`` this is the classic
    Θ(log* n) problem on trees (class (B) of §1.1); for ``num_colors = 2``
    it is global on paths and unsolvable on odd cycles.
    """
    if num_colors < 1:
        raise ProblemDefinitionError("need at least one color")
    colors = tuple(f"c{i}" for i in range(num_colors))
    return NodeEdgeCheckableLCL(
        sigma_in=[NO_INPUT],
        sigma_out=colors,
        node_constraints={
            d: [Multiset([c] * d) for c in colors] for d in range(1, max_degree + 1)
        },
        edge_constraint=[
            Multiset([a, b]) for a, b in itertools.combinations(colors, 2)
        ],
        g=_no_input_g(colors),
        name=f"{num_colors}-coloring",
    )


def mis(max_degree: int) -> NodeEdgeCheckableLCL:
    """Maximal independent set in the standard pointer encoding.

    ``M``: the node is in the set (all half-edges ``M``).
    Non-set nodes emit exactly one pointer ``P`` toward a set neighbor
    (certifying maximality) and ``O`` elsewhere.  Edge constraint forbids
    adjacent set nodes (``{M, M}``) and forces every pointer to land on a
    set node.
    """
    labels = ("M", "P", "O")
    node_constraints = {}
    for d in range(1, max_degree + 1):
        configurations = [Multiset(["M"] * d)]
        configurations.append(Multiset(["P"] + ["O"] * (d - 1)))
        node_constraints[d] = configurations
    edge = [Multiset(p) for p in (("M", "P"), ("M", "O"), ("O", "O"))]
    return NodeEdgeCheckableLCL(
        sigma_in=[NO_INPUT],
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=edge,
        g=_no_input_g(labels),
        name="mis",
    )


def maximal_matching(max_degree: int) -> NodeEdgeCheckableLCL:
    """Maximal matching in the standard encoding.

    A matched node emits ``M`` on its matching edge and ``O`` elsewhere; an
    unmatched node emits ``P`` everywhere.  Edges: ``{M, M}`` (a matching
    edge), ``{O, O}`` (both endpoints matched elsewhere), ``{O, P}``
    (unmatched next to matched — fine); ``{P, P}`` is forbidden, which is
    exactly maximality.
    """
    labels = ("M", "P", "O")
    node_constraints = {}
    for d in range(1, max_degree + 1):
        node_constraints[d] = [
            Multiset(["M"] + ["O"] * (d - 1)),
            Multiset(["P"] * d),
        ]
    edge = [Multiset(p) for p in (("M", "M"), ("O", "O"), ("O", "P"))]
    return NodeEdgeCheckableLCL(
        sigma_in=[NO_INPUT],
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=edge,
        g=_no_input_g(labels),
        name="maximal-matching",
    )


def weak_coloring(num_colors: int, max_degree: int) -> NodeEdgeCheckableLCL:
    """Weak coloring: every node has >= 1 neighbor of a different color.

    Encoded with labels ``(color, flag)``: a node uses one ``"p"`` flag (a
    pointer to a differing neighbor) and ``"o"`` flags elsewhere; an edge
    with a ``"p"`` side must have distinct colors.
    """
    colors = tuple(f"c{i}" for i in range(num_colors))
    labels = tuple((c, f) for c in colors for f in ("p", "o"))
    node_constraints = {}
    for d in range(1, max_degree + 1):
        configurations = []
        for c in colors:
            configurations.append(Multiset([(c, "p")] + [(c, "o")] * (d - 1)))
        node_constraints[d] = configurations
    edge = []
    for (c1, f1), (c2, f2) in itertools.combinations_with_replacement(labels, 2):
        if ("p" in (f1, f2)) and c1 == c2:
            continue
        edge.append(Multiset([(c1, f1), (c2, f2)]))
    return NodeEdgeCheckableLCL(
        sigma_in=[NO_INPUT],
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=edge,
        g=_no_input_g(labels),
        name=f"weak-{num_colors}-coloring",
    )


def edge_coloring(num_colors: int, max_degree: int) -> NodeEdgeCheckableLCL:
    """Proper edge coloring: incident edges get distinct colors.

    Both half-edges of an edge carry the edge's color (edge constraint:
    monochromatic pairs), and a node's incident colors are pairwise
    distinct (node constraint: rainbow multisets).  For
    ``num_colors >= 2Δ - 1`` this is in the Θ(log* n) class on trees; with
    2 colors on paths it alternates, i.e. is global — both ends are
    exercised by the decidability tests.
    """
    if num_colors < 1:
        raise ProblemDefinitionError("need at least one color")
    colors = tuple(f"e{i}" for i in range(num_colors))
    node_constraints = {
        d: [Multiset(combo) for combo in itertools.combinations(colors, d)]
        for d in range(1, max_degree + 1)
    }
    return NodeEdgeCheckableLCL(
        sigma_in=[NO_INPUT],
        sigma_out=colors,
        node_constraints=node_constraints,
        edge_constraint=[Multiset([c, c]) for c in colors],
        g=_no_input_g(colors),
        name=f"{num_colors}-edge-coloring",
    )


# --------------------------------------------------------- round-elim classics
def sinkless_orientation(delta: int) -> NodeEdgeCheckableLCL:
    """Sinkless orientation on graphs of maximum degree ``delta``.

    Every edge is oriented (``{I, O}`` on its two half-edges: the ``O``
    endpoint is the tail).  Nodes of degree exactly ``delta`` must not be
    sinks (>= 1 outgoing half-edge); smaller degrees are unconstrained, the
    standard convention that makes the problem solvable on trees.  The
    canonical round-elimination fixed point [14, 15].
    """
    if delta < 2:
        raise ProblemDefinitionError("sinkless orientation needs delta >= 2")
    labels = ("I", "O")
    node_constraints = {}
    for d in range(1, delta + 1):
        configurations = list(all_multisets(labels, d))
        if d == delta:
            configurations = [c for c in configurations if "O" in c]
        node_constraints[d] = configurations
    return NodeEdgeCheckableLCL(
        sigma_in=[NO_INPUT],
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=[Multiset(["I", "O"])],
        g=_no_input_g(labels),
        name=f"sinkless-orientation(delta={delta})",
    )


# ------------------------------------------------------------- with inputs
def echo(max_degree: int, values: Sequence[str] = ("0", "1")) -> NodeEdgeCheckableLCL:
    """"Edge echo": on each half-edge output the *opposite* input label.

    Outputs are pairs ``(mine, guess)``; ``g`` pins ``mine`` to the local
    input, and the edge constraint requires the two guesses to be crossed
    copies of the two ``mine`` components.  Needs exactly 1 round (look
    across the edge), so it is the minimal problem whose O(1) algorithm is
    *not* 0-round — the first interesting case for the gap pipeline, and a
    problem with genuine inputs (the setting the paper extends round
    elimination to).
    """
    values = tuple(values)
    labels = tuple((mine, guess) for mine in values for guess in values)
    node_constraints = {
        d: all_multisets(labels, d) for d in range(1, max_degree + 1)
    }
    edge = []
    for (m1, g1), (m2, g2) in itertools.combinations_with_replacement(labels, 2):
        if g1 == m2 and g2 == m1:
            edge.append(Multiset([(m1, g1), (m2, g2)]))
    return NodeEdgeCheckableLCL(
        sigma_in=values,
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=edge,
        g={v: frozenset(l for l in labels if l[0] == v) for v in values},
        name="echo",
    )


def echo_chain(depth: int, values: Sequence[str] = ("0", "1")) -> NodeEdgeCheckableLCL:
    """The depth-``k`` echo family on paths: complexity exactly ``k``.

    Output labels are ``(k+1)``-tuples ``(v₀, v₁, …, v_k)`` on each
    half-edge of a degree-<=2 node, with ``"-"`` as the "nothing there"
    sentinel near path ends:

    * ``v₀`` is pinned to the local input by ``g``;
    * for odd ``i``, the edge constraint forces ``vᵢ`` to equal the other
      endpoint's ``v_{i-1}`` (one hop of information per level);
    * for even ``i >= 2``, the node constraint forces ``vᵢ`` on one
      half-edge to equal ``v_{i-1}`` on the node's *other* half-edge.

    Unfolding the chain, ``v_i`` names an input ``⌈i/2⌉`` hops away (the
    node-checked levels reference the writer's *own* other half-edge and
    cost no extra radius; only the edge-checked levels cross an edge), so
    the problem has LOCAL complexity exactly ``⌈k/2⌉`` while staying
    radius-1 checkable — a ladder for exercising arbitrarily many round
    elimination / lifting steps (with inputs, the paper's setting).
    ``echo_chain(1)`` is :func:`echo` up to label shape and
    ``echo_chain(3)`` matches :func:`echo2`; the pipeline synthesizes and
    verifies the 3-round algorithm for ``echo_chain(5)`` (324 labels).
    """
    if depth < 1:
        raise ProblemDefinitionError("echo_chain needs depth >= 1")
    values = tuple(values)
    sentinel = "-"
    extended = values + (sentinel,)

    def component_domains() -> List[Tuple[str, ...]]:
        # v0, v1 never see a path end at distance 0/1 from their own node
        # (v1 is the direct opposite, which always exists); deeper levels
        # may run off the path and use the sentinel.
        domains: List[Tuple[str, ...]] = [values, values]
        for _ in range(2, depth + 1):
            domains.append(extended)
        return domains

    labels = tuple(itertools.product(*component_domains()))

    def node_ok_pair(first, second) -> bool:
        for i in range(2, depth + 1, 2):
            if first[i] != second[i - 1] or second[i] != first[i - 1]:
                return False
        return True

    def node_ok_end(label) -> bool:
        # Degree-1 node: every "other half-edge" reference is the sentinel.
        return all(label[i] == sentinel for i in range(2, depth + 1, 2))

    def edge_ok(first, second) -> bool:
        if first[1] != second[0] or second[1] != first[0]:
            return False
        for i in range(3, depth + 1, 2):
            if first[i] != second[i - 1] or second[i] != first[i - 1]:
                return False
        return True

    node_constraints: dict = {
        1: [Multiset([label]) for label in labels if node_ok_end(label)],
        2: [],
    }
    for first in labels:
        for second in labels:
            if node_ok_pair(first, second):
                node_constraints[2].append(Multiset([first, second]))
    edge = [
        Multiset([first, second])
        for first, second in itertools.combinations_with_replacement(labels, 2)
        if edge_ok(first, second)
    ]
    return NodeEdgeCheckableLCL(
        sigma_in=values,
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=edge,
        g={v: frozenset(l for l in labels if l[0] == v) for v in values},
        name=f"echo-chain({depth})",
    )


def echo2(values: Sequence[str] = ("0", "1")) -> NodeEdgeCheckableLCL:
    """"Two-hop echo" on paths: certify the input *two* hops away.

    Output labels are quadruples ``(here, across, far, far2)`` on each
    half-edge of a degree-<=2 node, with ``"-"`` as the "nothing there"
    sentinel at path ends:

    * ``here`` is pinned to the local input by ``g``;
    * the edge constraint forces ``across`` to equal the other endpoint's
      ``here`` (one hop of information);
    * the node constraint forces ``far`` on one half-edge to equal
      ``across`` on the node's *other* half-edge (so ``far`` names the
      input across the other edge — still one hop to compute);
    * the edge constraint additionally forces ``far2`` to equal the other
      endpoint's ``far`` — the input of the node *two hops away in this
      direction*, which genuinely requires radius 2 to compute.

    Locally checkable with radius 1 but LOCAL complexity exactly 2, so it
    drives the gap pipeline through two elimination / lifting steps, with
    inputs — the setting the paper's round-elimination extension targets.
    """
    values = tuple(values)
    sentinel = "-"
    extended = values + (sentinel,)
    labels = tuple(
        (here, across, far, far2)
        for here in values
        for across in values
        for far in extended
        for far2 in extended
    )
    node_constraints: dict = {1: [], 2: []}
    for label in labels:
        if label[2] == sentinel:
            node_constraints[1].append(Multiset([label]))
    for first in labels:
        for second in labels:
            if first[2] == second[1] and second[2] == first[1]:
                node_constraints[2].append(Multiset([first, second]))
    edge = []
    for first, second in itertools.combinations_with_replacement(labels, 2):
        if (
            first[1] == second[0]
            and second[1] == first[0]
            and first[3] == second[2]
            and second[3] == first[2]
        ):
            edge.append(Multiset([first, second]))
    return NodeEdgeCheckableLCL(
        sigma_in=values,
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=edge,
        g={v: frozenset(l for l in labels if l[0] == v) for v in values},
        name="echo2",
    )


def forbidden_input_output(max_degree: int) -> NodeEdgeCheckableLCL:
    """A list-coloring-flavored input problem.

    Inputs are "forbidden colors" from {0,1,2}; a node must output on each
    half-edge a color different from that half-edge's forbidden color, all
    its half-edges must agree (it is a node coloring), and edges must be
    properly colored.  With 3 colors and forbidden lists this sits in the
    Θ(log* n) class on paths and exercises ``g`` nontrivially.
    """
    colors = ("c0", "c1", "c2")
    forbidden = ("f0", "f1", "f2")
    node_constraints = {
        d: [Multiset([c] * d) for c in colors] for d in range(1, max_degree + 1)
    }
    edge = [Multiset([a, b]) for a, b in itertools.combinations(colors, 2)]
    g = {
        f: frozenset(c for c in colors if c[1] != f[1])
        for f in forbidden
    }
    return NodeEdgeCheckableLCL(
        sigma_in=forbidden,
        sigma_out=colors,
        node_constraints=node_constraints,
        edge_constraint=edge,
        g=g,
        name="forbidden-color",
    )


def input_copy(max_degree: int, values: Sequence[str] = ("0", "1")) -> NodeEdgeCheckableLCL:
    """Output your own input on every half-edge: 0 rounds, with inputs."""
    values = tuple(values)
    outputs = tuple(f"out{v}" for v in values)
    return NodeEdgeCheckableLCL(
        sigma_in=values,
        sigma_out=outputs,
        node_constraints={
            d: all_multisets(outputs, d) for d in range(1, max_degree + 1)
        },
        edge_constraint=all_multisets(outputs, 2),
        g={v: frozenset([f"out{v}"]) for v in values},
        name="input-copy",
    )


# ------------------------------------------------------------------ global
def two_coloring(max_degree: int) -> NodeEdgeCheckableLCL:
    """Proper 2-coloring: Θ(n) on paths, unsolvable on odd cycles."""
    return coloring(2, max_degree)


def edge_orientation_consistent(max_degree: int) -> NodeEdgeCheckableLCL:
    """Orient every edge; every node must be all-in (a sink) or all-out.

    On paths and cycles this forces sources and sinks to alternate — a
    period-2 pattern, hence a Θ(n) problem (and unsolvable on odd
    cycles), exactly like proper 2-coloring.  Included for the
    decidability fragment as a second member of the global class.
    """
    labels = ("I", "O")
    node_constraints = {
        d: [Multiset(["I"] * d), Multiset(["O"] * d)] for d in range(1, max_degree + 1)
    }
    return NodeEdgeCheckableLCL(
        sigma_in=[NO_INPUT],
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=[Multiset(["I", "O"])],
        g=_no_input_g(labels),
        name="consistent-orientation",
    )


def standard_catalog(max_degree: int = 3) -> List[NodeEdgeCheckableLCL]:
    """The default problem set used by tests and benchmarks."""
    return [
        trivial(max_degree),
        consensus(max_degree),
        coloring(max_degree + 1, max_degree),
        edge_coloring(2 * max_degree - 1, max_degree),
        mis(max_degree),
        maximal_matching(max_degree),
        weak_coloring(2, max_degree),
        sinkless_orientation(max_degree),
        echo(max_degree),
        forbidden_input_output(max_degree),
        input_copy(max_degree),
        two_coloring(max_degree),
        edge_orientation_consistent(max_degree),
    ]
