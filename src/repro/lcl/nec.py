"""Node-edge-checkable LCL problems (Definition 2.3).

A node-edge-checkable LCL is the quintuple
``(Σ_in, Σ_out, N, E, g)``:

* ``N = (N^1, N^2, ...)`` — for each degree ``i``, the collection of
  cardinality-``i`` multisets of output labels allowed *around a node*,
* ``E`` — the collection of cardinality-2 multisets allowed *on an edge*,
* ``g: Σ_in → 2^{Σ_out}`` — which outputs each input label permits on the
  same half-edge.

This is the form round elimination operates on; Lemma 2.6 reduces every
LCL to it at constant additive cost (see :mod:`repro.lcl.convert`).

Labels are arbitrary hashable objects.  After round elimination, labels
become ``frozenset``s of labels (and then frozensets of frozensets, ...);
everything here is agnostic to that.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.exceptions import ProblemDefinitionError
from repro.utils.multiset import Multiset, label_sort_key


def _freeze_configurations(configurations: Iterable) -> FrozenSet[Multiset]:
    frozen = set()
    for configuration in configurations:
        if not isinstance(configuration, Multiset):
            configuration = Multiset(configuration)
        frozen.add(configuration)
    return frozenset(frozen)


class NodeEdgeCheckableLCL:
    """An immutable node-edge-checkable LCL problem.

    Parameters
    ----------
    sigma_in, sigma_out:
        Finite label alphabets.
    node_constraints:
        Mapping ``degree -> iterable of multisets`` (each multiset given as
        a :class:`Multiset` or any iterable of labels of that cardinality).
        Degrees absent from the mapping (up to ``max_degree``) admit *no*
        configuration, i.e. nodes of such degrees are forbidden — pass an
        explicit collection (e.g. via :meth:`all_multisets`) to allow them.
    edge_constraint:
        Iterable of cardinality-2 multisets of output labels.
    g:
        Mapping from each input label to the set of permitted output
        labels.  If ``sigma_in`` has a single label the problem is an "LCL
        without inputs" in the paper's sense.
    name:
        Optional human-readable name, propagated through round elimination.
    """

    __slots__ = (
        "sigma_in",
        "sigma_out",
        "node_constraints",
        "edge_constraint",
        "g",
        "name",
        "_hash",
    )

    def __init__(
        self,
        sigma_in: Iterable[Any],
        sigma_out: Iterable[Any],
        node_constraints: Mapping[int, Iterable],
        edge_constraint: Iterable,
        g: Mapping[Any, Iterable[Any]],
        name: str = "unnamed",
    ):
        self.sigma_in = frozenset(sigma_in)
        self.sigma_out = frozenset(sigma_out)
        self.node_constraints: Dict[int, FrozenSet[Multiset]] = {
            degree: _freeze_configurations(configurations)
            for degree, configurations in node_constraints.items()
        }
        self.edge_constraint = _freeze_configurations(edge_constraint)
        self.g: Dict[Any, FrozenSet[Any]] = {
            label: frozenset(allowed) for label, allowed in g.items()
        }
        self.name = name
        self._validate()
        self._hash = hash(
            (
                self.sigma_in,
                self.sigma_out,
                tuple(sorted(self.node_constraints.items())),
                self.edge_constraint,
                tuple(sorted(self.g.items(), key=lambda kv: label_sort_key(kv[0]))),
            )
        )

    # ------------------------------------------------------------ validation
    def _validate(self) -> None:
        if not self.sigma_in:
            raise ProblemDefinitionError("sigma_in must be non-empty")
        if not self.sigma_out:
            raise ProblemDefinitionError("sigma_out must be non-empty")
        for degree, configurations in self.node_constraints.items():
            if degree < 1:
                raise ProblemDefinitionError(f"invalid degree {degree} in node constraint")
            for configuration in configurations:
                if len(configuration) != degree:
                    raise ProblemDefinitionError(
                        f"node configuration {configuration} has wrong cardinality for degree {degree}"
                    )
                unknown = configuration.support() - self.sigma_out
                if unknown:
                    raise ProblemDefinitionError(
                        f"node configuration uses labels outside sigma_out: {unknown}"
                    )
        for configuration in self.edge_constraint:
            if len(configuration) != 2:
                raise ProblemDefinitionError(
                    f"edge configuration {configuration} must have cardinality 2"
                )
            unknown = configuration.support() - self.sigma_out
            if unknown:
                raise ProblemDefinitionError(
                    f"edge configuration uses labels outside sigma_out: {unknown}"
                )
        if frozenset(self.g) != self.sigma_in:
            raise ProblemDefinitionError("g must be defined on exactly sigma_in")
        for label, allowed in self.g.items():
            unknown = allowed - self.sigma_out
            if unknown:
                raise ProblemDefinitionError(
                    f"g({label!r}) permits labels outside sigma_out: {unknown}"
                )

    # ------------------------------------------------------------- structure
    @property
    def max_degree(self) -> int:
        """The largest degree with a (possibly empty) declared constraint."""
        return max(self.node_constraints, default=0)

    @property
    def has_inputs(self) -> bool:
        """True iff correctness can depend on input labels (|Σ_in| > 1)."""
        return len(self.sigma_in) > 1

    def degrees(self) -> Tuple[int, ...]:
        return tuple(sorted(self.node_constraints))

    # -------------------------------------------------------------- queries
    def allows_node(self, labels: Iterable[Any]) -> bool:
        """Is this multiset of half-edge labels allowed around a node?"""
        configuration = labels if isinstance(labels, Multiset) else Multiset(labels)
        allowed = self.node_constraints.get(len(configuration))
        return allowed is not None and configuration in allowed

    def allows_edge(self, a: Any, b: Any) -> bool:
        """Is the pair ``{a, b}`` allowed on an edge?"""
        return Multiset((a, b)) in self.edge_constraint

    def allowed_outputs(self, input_label: Any) -> FrozenSet[Any]:
        """``g(input_label)``; raises for unknown inputs."""
        try:
            return self.g[input_label]
        except KeyError:
            raise ProblemDefinitionError(
                f"{input_label!r} is not in sigma_in of {self.name}"
            ) from None

    def used_output_labels(self) -> FrozenSet[Any]:
        """Labels appearing in at least one node AND one edge configuration
        and permitted by ``g`` for at least one input.

        Labels outside this set can never appear in a correct solution on a
        graph where every node has an incident edge, so they can be dropped
        without changing the problem (used by the label-hygiene passes of
        round elimination).
        """
        in_node = set()
        for configurations in self.node_constraints.values():
            for configuration in configurations:
                in_node |= configuration.support()
        in_edge = set()
        for configuration in self.edge_constraint:
            in_edge |= configuration.support()
        in_g = set()
        for allowed in self.g.values():
            in_g |= allowed
        return frozenset(in_node & in_edge & in_g)

    # ---------------------------------------------------------- transformers
    def restrict_outputs(self, keep: Iterable[Any]) -> "NodeEdgeCheckableLCL":
        """The same problem with output labels restricted to ``keep``.

        Configurations mentioning dropped labels are removed; ``g`` is
        intersected with ``keep``.  This is semantics-preserving when
        ``keep ⊇ used_output_labels()``.
        """
        keep = frozenset(keep)
        if not keep <= self.sigma_out:
            raise ProblemDefinitionError("keep must be a subset of sigma_out")
        return NodeEdgeCheckableLCL(
            sigma_in=self.sigma_in,
            sigma_out=keep,
            node_constraints={
                degree: [c for c in configurations if c.support() <= keep]
                for degree, configurations in self.node_constraints.items()
            },
            edge_constraint=[
                c for c in self.edge_constraint if c.support() <= keep
            ],
            g={label: allowed & keep for label, allowed in self.g.items()},
            name=self.name,
        )

    def rename_outputs(self, mapping: Mapping[Any, Any]) -> "NodeEdgeCheckableLCL":
        """Apply a bijective relabeling of output labels."""
        if frozenset(mapping) != self.sigma_out:
            raise ProblemDefinitionError("mapping must be defined on exactly sigma_out")
        if len(frozenset(mapping.values())) != len(self.sigma_out):
            raise ProblemDefinitionError("mapping must be injective")
        rename = lambda label: mapping[label]
        return NodeEdgeCheckableLCL(
            sigma_in=self.sigma_in,
            sigma_out=frozenset(mapping.values()),
            node_constraints={
                degree: [c.map(rename) for c in configurations]
                for degree, configurations in self.node_constraints.items()
            },
            edge_constraint=[c.map(rename) for c in self.edge_constraint],
            g={label: frozenset(rename(x) for x in allowed) for label, allowed in self.g.items()},
            name=self.name,
        )

    # ------------------------------------------------------------ comparison
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeEdgeCheckableLCL):
            return NotImplemented
        return (
            self.sigma_in == other.sigma_in
            and self.sigma_out == other.sigma_out
            and self.node_constraints == other.node_constraints
            and self.edge_constraint == other.edge_constraint
            and self.g == other.g
        )

    def __hash__(self) -> int:
        return self._hash

    def is_isomorphic(self, other: "NodeEdgeCheckableLCL") -> bool:
        """Equality up to a bijective renaming of *output* labels.

        Input labels must match exactly (inputs are part of the instance,
        not of the solution).  Uses backtracking over candidate bijections;
        intended for the small alphabets of tests and fixed-point checks.
        """
        if self.sigma_in != other.sigma_in:
            return False
        if len(self.sigma_out) != len(other.sigma_out):
            return False
        if sorted(map(len, self.node_constraints.values())) != sorted(
            map(len, other.node_constraints.values())
        ):
            return False
        mine = sorted(self.sigma_out, key=label_sort_key)
        theirs = sorted(other.sigma_out, key=label_sort_key)

        def attempt(assignment: Dict[Any, Any], remaining_mine, remaining_theirs) -> bool:
            if not remaining_mine:
                return self.rename_outputs(assignment) == other
            label = remaining_mine[0]
            for candidate in remaining_theirs:
                assignment[label] = candidate
                rest = [x for x in remaining_theirs if x != candidate]
                if attempt(assignment, remaining_mine[1:], rest):
                    return True
                del assignment[label]
            return False

        return attempt({}, mine, theirs)

    # --------------------------------------------------------------- display
    def summary(self) -> str:
        """A multi-line human-readable rendering of the constraints."""
        def show(label: Any) -> str:
            if isinstance(label, frozenset):
                inner = ",".join(sorted(show(x) for x in label))
                return "{" + inner + "}"
            return str(label)

        lines = [f"problem {self.name}"]
        lines.append("  inputs:  " + " ".join(sorted(map(show, self.sigma_in))))
        lines.append("  outputs: " + " ".join(sorted(map(show, self.sigma_out))))
        for degree in sorted(self.node_constraints):
            rendered = sorted(
                " ".join(show(x) for x in configuration.items)
                for configuration in self.node_constraints[degree]
            )
            lines.append(f"  node[{degree}]: " + (" | ".join(rendered) or "(forbidden)"))
        rendered = sorted(
            " ".join(show(x) for x in configuration.items)
            for configuration in self.edge_constraint
        )
        lines.append("  edge:    " + (" | ".join(rendered) or "(forbidden)"))
        for input_label in sorted(self.sigma_in, key=label_sort_key):
            allowed = " ".join(sorted(show(x) for x in self.g[input_label]))
            lines.append(f"  g({show(input_label)}) = {allowed}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"NodeEdgeCheckableLCL(name={self.name!r}, |sigma_in|={len(self.sigma_in)}, "
            f"|sigma_out|={len(self.sigma_out)}, degrees={self.degrees()})"
        )


def all_multisets(labels: Iterable[Any], cardinality: int) -> Tuple[Multiset, ...]:
    """All multisets of the given cardinality over ``labels``.

    Convenience for building unconstrained node constraints
    (``N^i`` = everything).
    """
    ordered = sorted(set(labels), key=label_sort_key)
    return tuple(
        Multiset(combo)
        for combo in itertools.combinations_with_replacement(ordered, cardinality)
    )
