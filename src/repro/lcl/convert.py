"""Lemma 2.6: every LCL reduces to a node-edge-checkable LCL.

The construction (for checking radius ``r = 1``, which the library's
concrete general problems use): output labels of ``Π'`` are *accepted
ball descriptions with a marked half-edge* — a full transcript of a
radius-1 ball (the center's degree, inputs and outputs; for each port the
neighbor's degree, remote port, inputs and outputs) accepted by ``P``,
with one of the center's ports marked.  Then

* the node constraint allows exactly the ``d`` markings of one common
  accepted ball,
* the edge constraint allows two marked descriptions iff each endpoint's
  claim about its neighbor matches the other endpoint's self-description
  (degree, remote port, inputs, outputs), and
* ``g`` pins the marked half-edge's recorded input to the actual input.

Correctness is Lemma 2.6's BFS-gluing argument; the complexity overhead
is the ``±r`` rounds of encoding/decoding.  The construction is
inherently exponential in ``Δ`` and the alphabet sizes — that is true of
the lemma itself, not of this implementation — so a ``max_labels`` guard
keeps accidental blow-ups loud.

For ``r > 1`` the same construction applies with radius-``r`` transcripts
but the enumeration is beyond reasonable materialization; the library's
pipeline therefore defines its problems node-edge-checkably from the
start (as the paper itself effectively does via this lemma).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.exceptions import ProblemDefinitionError
from repro.graphs.balls import Ball
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.lcl.problem import LCLProblem
from repro.utils.multiset import Multiset, label_sort_key


@dataclass(frozen=True)
class NeighborRecord:
    """What a radius-1 transcript records about one neighbor."""

    degree: int
    remote_port: int
    inputs: Tuple[Any, ...]
    outputs: Tuple[Any, ...]


@dataclass(frozen=True)
class BallDescription:
    """A full radius-1 transcript: the ``Σ_out^{Π'}`` payload of Lemma 2.6."""

    center_degree: int
    center_inputs: Tuple[Any, ...]
    center_outputs: Tuple[Any, ...]
    neighbors: Tuple[NeighborRecord, ...]

    def __repr__(self) -> str:  # compact, deterministic
        return (
            f"Ball(d={self.center_degree}, in={self.center_inputs}, "
            f"out={self.center_outputs}, nbrs={self.neighbors})"
        )


#: A label of the converted problem: a transcript plus a marked port.
MarkedBall = Tuple[BallDescription, int]


def _enumerate_neighbor_records(
    sigma_in: List[Any], sigma_out: List[Any], max_degree: int
) -> List[NeighborRecord]:
    records = []
    for degree in range(1, max_degree + 1):
        for remote_port in range(degree):
            for inputs in itertools.product(sigma_in, repeat=degree):
                for outputs in itertools.product(sigma_out, repeat=degree):
                    records.append(
                        NeighborRecord(degree, remote_port, inputs, outputs)
                    )
    return records


def _synthetic_ball(description: BallDescription) -> Ball:
    """Materialize a transcript as a Ball for the predicate to inspect."""
    ball = Ball(radius=1)
    ball.global_index.append(0)
    ball.distance.append(0)
    ball.degrees.append(description.center_degree)
    ball.ids.append(None)
    ball.inputs.append(description.center_inputs)
    ball.bits.append(None)
    ball.adj.append({})
    for port, record in enumerate(description.neighbors):
        local = ball.num_nodes
        ball.global_index.append(local)
        ball.distance.append(1)
        ball.degrees.append(record.degree)
        ball.ids.append(None)
        ball.inputs.append(record.inputs)
        ball.bits.append(None)
        ball.adj.append({record.remote_port: (0, port)})
        ball.adj[0][port] = (local, record.remote_port)
    return ball


def _accepted(problem: LCLProblem, description: BallDescription) -> bool:
    ball = _synthetic_ball(description)
    local_inputs = tuple(ball.inputs)
    local_outputs = (description.center_outputs,) + tuple(
        record.outputs for record in description.neighbors
    )
    return bool(problem.accepts(ball, local_inputs, local_outputs))


def _edge_keys(label: MarkedBall):
    """(self-description, claim-about-neighbor) across the marked edge."""
    description, marked = label
    self_key = NeighborRecord(
        degree=description.center_degree,
        remote_port=marked,
        inputs=description.center_inputs,
        outputs=description.center_outputs,
    )
    claim_key = description.neighbors[marked]
    return self_key, claim_key


def to_node_edge_checkable(
    problem: LCLProblem,
    max_degree: int,
    max_labels: int = 20000,
) -> NodeEdgeCheckableLCL:
    """The Lemma 2.6 normalization of a radius-1 general LCL."""
    if problem.radius != 1:
        raise ProblemDefinitionError(
            "the executable Lemma 2.6 construction materializes radius-1 "
            "transcripts only (see module docstring)"
        )
    sigma_in = sorted(problem.sigma_in, key=label_sort_key)
    sigma_out = sorted(problem.sigma_out, key=label_sort_key)
    neighbor_records = _enumerate_neighbor_records(sigma_in, sigma_out, max_degree)

    labels: List[MarkedBall] = []
    node_constraints: Dict[int, List[Multiset]] = {
        degree: [] for degree in range(1, max_degree + 1)
    }
    for degree in range(1, max_degree + 1):
        for center_inputs in itertools.product(sigma_in, repeat=degree):
            for center_outputs in itertools.product(sigma_out, repeat=degree):
                for neighbors in itertools.product(neighbor_records, repeat=degree):
                    description = BallDescription(
                        degree, center_inputs, center_outputs, tuple(neighbors)
                    )
                    if not _accepted(problem, description):
                        continue
                    marked = [(description, port) for port in range(degree)]
                    labels.extend(marked)
                    if len(labels) > max_labels:
                        raise ProblemDefinitionError(
                            f"Lemma 2.6 transcript count exceeds max_labels="
                            f"{max_labels} for {problem.name}"
                        )
                    node_constraints[degree].append(Multiset(marked))

    edge_constraint: List[Multiset] = []
    by_keys: Dict[Tuple, List[MarkedBall]] = {}
    for label in labels:
        by_keys.setdefault(_edge_keys(label), []).append(label)
    for (self1, claim1), group1 in by_keys.items():
        for (self2, claim2), group2 in by_keys.items():
            if claim1 != self2 or claim2 != self1:
                continue
            for first in group1:
                for second in group2:
                    pair = Multiset((first, second))
                    edge_constraint.append(pair)

    g = {
        input_label: frozenset(
            label
            for label in labels
            if label[0].center_inputs[label[1]] == input_label
        )
        for input_label in sigma_in
    }
    return NodeEdgeCheckableLCL(
        sigma_in=sigma_in,
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=edge_constraint,
        g=g,
        name=f"nec({problem.name})",
    )


def decode_marked_output(label: MarkedBall) -> Any:
    """The Π-output on the marked half-edge (the 0-round decoding step)."""
    description, marked = label
    return description.center_outputs[marked]
