"""Solution checking and local failure events (Definition 2.4).

For node-edge-checkable problems the paper defines exactly when a labeling
is *incorrect on an edge* (edge configuration or ``g`` violated at either
endpoint) and *incorrect at a node* (node configuration or ``g`` violated
at an incident half-edge).  :func:`check_solution` reports both lists,
which is what the failure-probability analysis of §3.2 counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.exceptions import LabelingError
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.multiset import Multiset


@dataclass(frozen=True)
class CheckReport:
    """Outcome of checking one labeling against one problem instance."""

    failed_nodes: Tuple[int, ...]
    #: Edges as ``(u, v)`` with ``u < v``.
    failed_edges: Tuple[Tuple[int, int], ...]
    #: Half-edges that are missing an output label entirely.
    unlabeled: Tuple[Tuple[int, int], ...]

    @property
    def is_valid(self) -> bool:
        return not (self.failed_nodes or self.failed_edges or self.unlabeled)

    def __str__(self) -> str:
        if self.is_valid:
            return "valid"
        return (
            f"invalid: {len(self.failed_nodes)} failed nodes, "
            f"{len(self.failed_edges)} failed edges, "
            f"{len(self.unlabeled)} unlabeled half-edges"
        )


def check_solution(
    problem: NodeEdgeCheckableLCL,
    graph: Graph,
    inputs: HalfEdgeLabeling,
    outputs: HalfEdgeLabeling,
) -> CheckReport:
    """Check ``outputs`` against ``problem`` on ``(graph, inputs)``.

    Follows Definition 2.4 to the letter:

    * an edge ``e = {u, v}`` fails if its label pair is outside the edge
      constraint, or either endpoint's output violates ``g`` of its input;
    * a node ``v`` fails if the multiset of its half-edge labels is outside
      ``N^{deg(v)}``, or any incident half-edge violates ``g``.
    """
    if not inputs.is_total():
        raise LabelingError("input labeling must be total")

    unlabeled = tuple(h for h in graph.half_edges() if h not in outputs)

    def g_ok(half_edge: Tuple[int, int]) -> bool:
        if half_edge not in outputs:
            return False
        return outputs[half_edge] in problem.allowed_outputs(inputs[half_edge])

    failed_edges: List[Tuple[int, int]] = []
    for u, pu, v, pv in graph.edges():
        ok = (
            (u, pu) in outputs
            and (v, pv) in outputs
            and problem.allows_edge(outputs[(u, pu)], outputs[(v, pv)])
            and g_ok((u, pu))
            and g_ok((v, pv))
        )
        if not ok:
            failed_edges.append((u, v))

    failed_nodes: List[int] = []
    for v in range(graph.num_nodes):
        if graph.degree(v) == 0:
            # Isolated nodes carry no half-edges; Definition 2.3 constrains
            # only degrees >= 1, so they are vacuously correct.
            continue
        half_edges = [(v, p) for p in range(graph.degree(v))]
        ok = all(h in outputs for h in half_edges)
        if ok:
            ok = problem.allows_node(Multiset(outputs[h] for h in half_edges))
        if ok:
            ok = all(g_ok(h) for h in half_edges)
        if not ok:
            failed_nodes.append(v)

    return CheckReport(
        failed_nodes=tuple(failed_nodes),
        failed_edges=tuple(failed_edges),
        unlabeled=unlabeled,
    )


def is_valid_solution(
    problem: NodeEdgeCheckableLCL,
    graph: Graph,
    inputs: HalfEdgeLabeling,
    outputs: HalfEdgeLabeling,
) -> bool:
    """Shorthand for ``check_solution(...).is_valid``."""
    return check_solution(problem, graph, inputs, outputs).is_valid


def brute_force_solution(
    problem: NodeEdgeCheckableLCL,
    graph: Graph,
    inputs: HalfEdgeLabeling,
    limit: Optional[int] = None,
) -> Optional[HalfEdgeLabeling]:
    """Find *some* valid output labeling by backtracking, or ``None``.

    A reference oracle for tests and for the decidability modules: it
    decides solvability of a concrete instance exactly (exponential time;
    only use on small graphs).  ``limit`` bounds the number of explored
    assignments as a safety valve.
    """
    half_edges = sorted(graph.half_edges())
    outputs = HalfEdgeLabeling(graph)
    explored = 0

    def consistent_upto(index: int) -> bool:
        v, port = half_edges[index]
        label = outputs[(v, port)]
        if label not in problem.allowed_outputs(inputs[(v, port)]):
            return False
        opposite = graph.opposite((v, port))
        if opposite in outputs and not problem.allows_edge(label, outputs[opposite]):
            return False
        labels = [outputs.get((v, p)) for p in range(graph.degree(v))]
        if all(x is not None for x in labels):
            if not problem.allows_node(Multiset(labels)):
                return False
        return True

    order = sorted(problem.sigma_out, key=lambda x: (type(x).__qualname__, repr(x)))

    def backtrack(index: int) -> bool:
        nonlocal explored
        if index == len(half_edges):
            return True
        for label in order:
            explored += 1
            if limit is not None and explored > limit:
                raise LabelingError("brute_force_solution exceeded its search limit")
            outputs[half_edges[index]] = label
            if consistent_upto(index) and backtrack(index + 1):
                return True
            del outputs._labels[half_edges[index]]
        return False

    if graph.num_edges == 0:
        # Isolated nodes have no half-edges; nothing to label.
        return outputs
    return outputs if backtrack(0) else None
