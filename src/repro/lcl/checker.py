"""Solution checking and local failure events (Definition 2.4).

For node-edge-checkable problems the paper defines exactly when a labeling
is *incorrect on an edge* (edge configuration or ``g`` violated at either
endpoint) and *incorrect at a node* (node configuration or ``g`` violated
at an incident half-edge).  :func:`check_solution` reports both lists,
which is what the failure-probability analysis of §3.2 counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.exceptions import BruteForceLimitError, LabelingError
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.multiset import Multiset


@dataclass(frozen=True)
class CheckFailure:
    """One concrete constraint violation, localized and explained.

    ``kind`` is ``"node"`` / ``"edge"`` / ``"unlabeled"``; ``where`` is the
    failing node, ``(u, v)`` edge, or ``(v, port)`` half-edge; ``message``
    names the configuration that was rejected, so a failing check can be
    debugged without re-deriving the violation by hand.
    """

    kind: str
    where: Tuple
    message: str

    def __str__(self) -> str:
        return f"{self.kind} {self.where}: {self.message}"


@dataclass(frozen=True)
class CheckReport:
    """Outcome of checking one labeling against one problem instance."""

    failed_nodes: Tuple[int, ...]
    #: Edges as ``(u, v)`` with ``u < v``.
    failed_edges: Tuple[Tuple[int, int], ...]
    #: Half-edges that are missing an output label entirely.
    unlabeled: Tuple[Tuple[int, int], ...]
    #: One localized, human-readable record per violation above.
    failures: Tuple[CheckFailure, ...] = field(default=())

    @property
    def is_valid(self) -> bool:
        return not (self.failed_nodes or self.failed_edges or self.unlabeled)

    def __str__(self) -> str:
        if self.is_valid:
            return "valid"
        lines = [
            f"invalid: {len(self.failed_nodes)} failed nodes, "
            f"{len(self.failed_edges)} failed edges, "
            f"{len(self.unlabeled)} unlabeled half-edges"
        ]
        shown = 5
        lines.extend(f"  {failure}" for failure in self.failures[:shown])
        if len(self.failures) > shown:
            lines.append(f"  ... and {len(self.failures) - shown} more")
        return "\n".join(lines)


def check_solution(
    problem: NodeEdgeCheckableLCL,
    graph: Graph,
    inputs: HalfEdgeLabeling,
    outputs: HalfEdgeLabeling,
) -> CheckReport:
    """Check ``outputs`` against ``problem`` on ``(graph, inputs)``.

    Follows Definition 2.4 to the letter:

    * an edge ``e = {u, v}`` fails if its label pair is outside the edge
      constraint, or either endpoint's output violates ``g`` of its input;
    * a node ``v`` fails if the multiset of its half-edge labels is outside
      ``N^{deg(v)}``, or any incident half-edge violates ``g``.
    """
    if not inputs.is_total():
        raise LabelingError("input labeling must be total")

    failures: List[CheckFailure] = []

    unlabeled = tuple(h for h in graph.half_edges() if h not in outputs)
    for half_edge in unlabeled:
        failures.append(
            CheckFailure(
                "unlabeled", half_edge, "half-edge carries no output label"
            )
        )

    def g_violation(half_edge: Tuple[int, int]) -> Optional[str]:
        """Why ``g`` rejects this half-edge, or ``None`` if it is fine."""
        if half_edge not in outputs:
            return "missing output label"
        label, input_label = outputs[half_edge], inputs[half_edge]
        if label not in problem.allowed_outputs(input_label):
            return f"g({input_label!r}) does not permit output {label!r}"
        return None

    failed_edges: List[Tuple[int, int]] = []
    for u, pu, v, pv in graph.edges():
        reasons: List[str] = []
        if (u, pu) in outputs and (v, pv) in outputs:
            pair = (outputs[(u, pu)], outputs[(v, pv)])
            if not problem.allows_edge(*pair):
                reasons.append(
                    f"edge configuration {{{pair[0]!r}, {pair[1]!r}}} is not "
                    f"in the edge constraint of {problem.name!r}"
                )
        else:
            reasons.append("an endpoint half-edge is unlabeled")
        for half_edge in ((u, pu), (v, pv)):
            why = g_violation(half_edge)
            if why is not None:
                reasons.append(f"half-edge {half_edge}: {why}")
        if reasons:
            failed_edges.append((u, v))
            failures.append(CheckFailure("edge", (u, v), "; ".join(reasons)))

    failed_nodes: List[int] = []
    for v in range(graph.num_nodes):
        if graph.degree(v) == 0:
            # Isolated nodes carry no half-edges; Definition 2.3 constrains
            # only degrees >= 1, so they are vacuously correct.
            continue
        half_edges = [(v, p) for p in range(graph.degree(v))]
        reasons = []
        if all(h in outputs for h in half_edges):
            configuration = Multiset(outputs[h] for h in half_edges)
            if not problem.allows_node(configuration):
                reasons.append(
                    f"node configuration {tuple(configuration.items)!r} is not "
                    f"in N^{graph.degree(v)} of {problem.name!r}"
                )
            for half_edge in half_edges:
                why = g_violation(half_edge)
                if why is not None:
                    reasons.append(f"half-edge {half_edge}: {why}")
        else:
            reasons.append("an incident half-edge is unlabeled")
        if reasons:
            failed_nodes.append(v)
            failures.append(CheckFailure("node", (v,), "; ".join(reasons)))

    return CheckReport(
        failed_nodes=tuple(failed_nodes),
        failed_edges=tuple(failed_edges),
        unlabeled=unlabeled,
        failures=tuple(failures),
    )


def is_valid_solution(
    problem: NodeEdgeCheckableLCL,
    graph: Graph,
    inputs: HalfEdgeLabeling,
    outputs: HalfEdgeLabeling,
) -> bool:
    """Shorthand for ``check_solution(...).is_valid``."""
    return check_solution(problem, graph, inputs, outputs).is_valid


#: Default size guard for :func:`brute_force_solution`: large enough for
#: every reference-oracle use in the test and decidability suites, small
#: enough that the exponential search cannot be reached by accident.
BRUTE_FORCE_MAX_NODES = 32


def brute_force_solution(
    problem: NodeEdgeCheckableLCL,
    graph: Graph,
    inputs: HalfEdgeLabeling,
    limit: Optional[int] = None,
    max_nodes: Optional[int] = BRUTE_FORCE_MAX_NODES,
) -> Optional[HalfEdgeLabeling]:
    """Find *some* valid output labeling by backtracking, or ``None``.

    A reference oracle for tests and for the decidability modules: it
    decides solvability of a concrete instance exactly (exponential time;
    only use on small graphs).  ``limit`` bounds the number of explored
    assignments as a safety valve; ``max_nodes`` guards the instance size
    up front — oversized graphs raise
    :class:`~repro.exceptions.BruteForceLimitError` instead of silently
    running hot (pass ``None`` to disable the guard).
    """
    if max_nodes is not None and graph.num_nodes > max_nodes:
        raise BruteForceLimitError(
            f"brute_force_solution refuses {graph.num_nodes}-node instance "
            f"(guard: max_nodes={max_nodes}); the search is exponential — "
            "pass max_nodes=None to override"
        )
    half_edges = sorted(graph.half_edges())
    outputs = HalfEdgeLabeling(graph)
    explored = 0

    def consistent_upto(index: int) -> bool:
        v, port = half_edges[index]
        label = outputs[(v, port)]
        if label not in problem.allowed_outputs(inputs[(v, port)]):
            return False
        opposite = graph.opposite((v, port))
        if opposite in outputs and not problem.allows_edge(label, outputs[opposite]):
            return False
        labels = [outputs.get((v, p)) for p in range(graph.degree(v))]
        if all(x is not None for x in labels):
            if not problem.allows_node(Multiset(labels)):
                return False
        return True

    order = sorted(problem.sigma_out, key=lambda x: (type(x).__qualname__, repr(x)))

    def backtrack(index: int) -> bool:
        nonlocal explored
        if index == len(half_edges):
            return True
        for label in order:
            explored += 1
            if limit is not None and explored > limit:
                raise LabelingError("brute_force_solution exceeded its search limit")
            outputs[half_edges[index]] = label
            if consistent_upto(index) and backtrack(index + 1):
                return True
            del outputs._labels[half_edges[index]]
        return False

    if graph.num_edges == 0:
        # Isolated nodes have no half-edges; nothing to label.
        return outputs
    return outputs if backtrack(0) else None
