"""A text format for node-edge-checkable LCL problems.

Inspired by the syntax of Olivetti's round-eliminator tool: node and edge
configurations are space-separated label rows, one per line.  The format
extends it with explicit per-degree sections (the paper handles irregular
trees) and a ``g`` section (the paper handles inputs):

.. code-block:: text

    # sinkless orientation, Delta = 3
    problem sinkless-orientation
    inputs: *
    outputs: I O
    node 1:
      I
      O
    node 3:
      I I O
      I O O
      O O O
    edge:
      I O
    g * : I O

Labels are bare tokens (no whitespace); ``#`` starts a comment.  The
parser/serializer round-trips every catalog problem with string labels;
problems whose labels are structured objects (round-elimination output,
Lemma 2.6 transcripts) serialize via their canonical ``repr`` and are
not meant to be re-parsed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.exceptions import ProblemDefinitionError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.multiset import Multiset, label_sort_key


def serialize(problem: NodeEdgeCheckableLCL) -> str:
    """Render a problem in the text format (string labels only)."""
    for label in list(problem.sigma_out) + list(problem.sigma_in):
        if not isinstance(label, str) or any(ch.isspace() for ch in label):
            raise ProblemDefinitionError(
                "serialize() supports whitespace-free string labels; "
                f"got {label!r}"
            )
    lines = [f"problem {problem.name}"]
    lines.append("inputs: " + " ".join(sorted(problem.sigma_in)))
    lines.append("outputs: " + " ".join(sorted(problem.sigma_out)))
    for degree in sorted(problem.node_constraints):
        lines.append(f"node {degree}:")
        for configuration in sorted(
            problem.node_constraints[degree], key=lambda c: c.items
        ):
            lines.append("  " + " ".join(configuration.items))
    lines.append("edge:")
    for configuration in sorted(problem.edge_constraint, key=lambda c: c.items):
        lines.append("  " + " ".join(configuration.items))
    for input_label in sorted(problem.sigma_in):
        allowed = " ".join(sorted(problem.g[input_label]))
        lines.append(f"g {input_label} : {allowed}")
    return "\n".join(lines) + "\n"


def parse(text: str) -> NodeEdgeCheckableLCL:
    """Parse the text format back into a problem."""
    name = "unnamed"
    sigma_in: List[str] = []
    sigma_out: List[str] = []
    node_constraints: Dict[int, List[Multiset]] = {}
    edge_constraint: List[Multiset] = []
    g: Dict[str, List[str]] = {}
    section: Tuple[str, Any] = ("none", None)

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("problem "):
            name = stripped[len("problem ") :].strip()
        elif stripped.startswith("inputs:"):
            sigma_in = stripped[len("inputs:") :].split()
        elif stripped.startswith("outputs:"):
            sigma_out = stripped[len("outputs:") :].split()
        elif stripped.startswith("node ") and stripped.endswith(":"):
            degree = int(stripped[len("node ") : -1])
            node_constraints.setdefault(degree, [])
            section = ("node", degree)
        elif stripped == "edge:":
            section = ("edge", None)
        elif stripped.startswith("g "):
            body = stripped[2:]
            if ":" not in body:
                raise ProblemDefinitionError(f"malformed g line: {raw_line!r}")
            input_label, allowed = body.split(":", 1)
            g[input_label.strip()] = allowed.split()
        elif line.startswith(" ") or line.startswith("\t"):
            tokens = stripped.split()
            kind, payload = section
            if kind == "node":
                if len(tokens) != payload:
                    raise ProblemDefinitionError(
                        f"degree-{payload} configuration has {len(tokens)} labels: {raw_line!r}"
                    )
                node_constraints[payload].append(Multiset(tokens))
            elif kind == "edge":
                if len(tokens) != 2:
                    raise ProblemDefinitionError(
                        f"edge configuration needs 2 labels: {raw_line!r}"
                    )
                edge_constraint.append(Multiset(tokens))
            else:
                raise ProblemDefinitionError(f"configuration outside a section: {raw_line!r}")
        else:
            raise ProblemDefinitionError(f"unrecognized line: {raw_line!r}")

    if not sigma_in or not sigma_out:
        raise ProblemDefinitionError("missing inputs:/outputs: declarations")
    if not g:
        g = {label: list(sigma_out) for label in sigma_in}
    return NodeEdgeCheckableLCL(
        sigma_in=sigma_in,
        sigma_out=sigma_out,
        node_constraints=node_constraints,
        edge_constraint=edge_constraint,
        g=g,
        name=name,
    )
