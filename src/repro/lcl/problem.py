"""General LCL problems (Definition 2.2).

An LCL problem is ``(Σ_in, Σ_out, r, P)`` where ``P`` is a finite
collection of ``Σ_in``-``Σ_out``-labeled balls of radius ``r``: an output
labeling is correct iff every node's radius-``r`` ball (with its input and
output labels) is isomorphic to a member of ``P``.

Enumerating ``P`` explicitly is exponential in ``Δ^r``, so this class
supports two interchangeable representations:

* a *predicate* ``accepts(ball, inputs, outputs) -> bool`` evaluated on the
  canonical :class:`~repro.graphs.balls.Ball` around each node (the natural
  way to define problems programmatically), and
* an explicit collection of accepted ball *signatures*, obtainable from a
  predicate on a bounded universe via :meth:`LCLProblem.enumerate_accepted`
  (used by the Lemma 2.6 conversion and by tests that need ``P`` as data).

Both induce exactly the Definition 2.2 notion of correctness because ball
signatures coincide iff balls are port-isomorphic.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, Optional, Tuple

from repro.exceptions import ProblemDefinitionError
from repro.graphs.balls import Ball, extract_ball
from repro.graphs.core import Graph, HalfEdgeLabeling

#: ``accepts(ball, inputs_by_local_port, outputs_by_local_port) -> bool``
#: where the two labelings are tuples indexed like ``ball.inputs``.
Predicate = Callable[[Ball, Tuple[Tuple[Any, ...], ...], Tuple[Tuple[Any, ...], ...]], bool]


class LCLProblem:
    """A general LCL problem with checking radius ``r``.

    Parameters
    ----------
    sigma_in, sigma_out:
        Finite alphabets.
    radius:
        The checking radius ``r >= 1``.
    accepts:
        Local correctness predicate (see module docstring).
    name:
        Optional human-readable name.
    """

    def __init__(
        self,
        sigma_in: Iterable[Any],
        sigma_out: Iterable[Any],
        radius: int,
        accepts: Predicate,
        name: str = "unnamed",
    ):
        self.sigma_in = frozenset(sigma_in)
        self.sigma_out = frozenset(sigma_out)
        if radius < 1:
            raise ProblemDefinitionError("checking radius must be >= 1")
        if not self.sigma_in or not self.sigma_out:
            raise ProblemDefinitionError("alphabets must be non-empty")
        self.radius = radius
        self.accepts = accepts
        self.name = name

    # ---------------------------------------------------------------- checks
    def ball_labels(
        self,
        ball: Ball,
        labeling: HalfEdgeLabeling,
        graph: Graph,
    ) -> Tuple[Tuple[Any, ...], ...]:
        """Collect a labeling restricted to the ball, indexed locally."""
        rows = []
        for local in range(ball.num_nodes):
            global_v = ball.global_index[local]
            rows.append(
                tuple(
                    labeling.get((global_v, port))
                    for port in range(graph.degree(global_v))
                )
            )
        return tuple(rows)

    def check_node(
        self,
        graph: Graph,
        node: int,
        inputs: HalfEdgeLabeling,
        outputs: HalfEdgeLabeling,
    ) -> bool:
        """Is the radius-``r`` ball around ``node`` accepted?"""
        ball = extract_ball(graph, node, self.radius, input_labeling=inputs)
        local_inputs = self.ball_labels(ball, inputs, graph)
        local_outputs = self.ball_labels(ball, outputs, graph)
        return bool(self.accepts(ball, local_inputs, local_outputs))

    def is_valid(
        self,
        graph: Graph,
        inputs: HalfEdgeLabeling,
        outputs: HalfEdgeLabeling,
    ) -> bool:
        """Global correctness: every node's ball is accepted."""
        return all(
            self.check_node(graph, v, inputs, outputs) for v in range(graph.num_nodes)
        )

    def failed_nodes(
        self,
        graph: Graph,
        inputs: HalfEdgeLabeling,
        outputs: HalfEdgeLabeling,
    ) -> Tuple[int, ...]:
        return tuple(
            v
            for v in range(graph.num_nodes)
            if not self.check_node(graph, v, inputs, outputs)
        )

    def enumerate_accepted(self, max_degree: int, max_transcripts: int = 20000):
        """All accepted radius-1 ball transcripts (the explicit ``P``).

        Materializes the Definition 2.2 collection for radius-1 problems
        as :class:`repro.lcl.convert.BallDescription` objects — the same
        enumeration the Lemma 2.6 conversion runs on.  Exponential in
        ``Δ`` and the alphabets; guarded by ``max_transcripts``.
        """
        import itertools as it

        from repro.exceptions import ProblemDefinitionError
        from repro.lcl.convert import (
            BallDescription,
            _accepted,
            _enumerate_neighbor_records,
        )
        from repro.utils.multiset import label_sort_key

        if self.radius != 1:
            raise ProblemDefinitionError(
                "enumerate_accepted materializes radius-1 transcripts only"
            )
        sigma_in = sorted(self.sigma_in, key=label_sort_key)
        sigma_out = sorted(self.sigma_out, key=label_sort_key)
        records = _enumerate_neighbor_records(sigma_in, sigma_out, max_degree)
        accepted = []
        for degree in range(1, max_degree + 1):
            for center_inputs in it.product(sigma_in, repeat=degree):
                for center_outputs in it.product(sigma_out, repeat=degree):
                    for neighbors in it.product(records, repeat=degree):
                        description = BallDescription(
                            degree, center_inputs, center_outputs, tuple(neighbors)
                        )
                        if _accepted(self, description):
                            accepted.append(description)
                            if len(accepted) > max_transcripts:
                                raise ProblemDefinitionError(
                                    "accepted-transcript count exceeds "
                                    f"max_transcripts={max_transcripts}"
                                )
        return accepted

    def __repr__(self) -> str:
        return (
            f"LCLProblem(name={self.name!r}, radius={self.radius}, "
            f"|sigma_in|={len(self.sigma_in)}, |sigma_out|={len(self.sigma_out)})"
        )
