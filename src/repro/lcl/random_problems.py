"""Random node-edge-checkable LCL generators.

Used by the decidability benchmarks (verdict histograms over random
problems) and by the fuzz tests that cross-check the round elimination
operators against their quantifier definitions on arbitrary inputs —
catalog problems alone would only exercise well-structured constraints.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Sequence

from repro.lcl.catalog import NO_INPUT
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.multiset import Multiset


def random_lcl(
    seed: int,
    num_labels: int = 3,
    max_degree: int = 2,
    density: float = 0.4,
    num_inputs: int = 1,
    name: Optional[str] = None,
) -> NodeEdgeCheckableLCL:
    """A random LCL with independently sampled configurations.

    Every possible node/edge configuration is kept with probability
    ``density`` (at least one per degree is forced so the problem object
    stays meaningful); with ``num_inputs > 1``, ``g`` maps each input to a
    random non-empty label subset.
    """
    rng = random.Random(seed)
    labels = [f"x{i}" for i in range(num_labels)]
    inputs = (
        [NO_INPUT]
        if num_inputs <= 1
        else [f"i{i}" for i in range(num_inputs)]
    )

    def sample(universe: List[Multiset]) -> List[Multiset]:
        kept = [m for m in universe if rng.random() < density]
        if not kept:
            kept = [rng.choice(universe)]
        return kept

    node_constraints = {}
    for degree in range(1, max_degree + 1):
        universe = [
            Multiset(combo)
            for combo in itertools.combinations_with_replacement(labels, degree)
        ]
        node_constraints[degree] = sample(universe)
    edge_universe = [
        Multiset(pair)
        for pair in itertools.combinations_with_replacement(labels, 2)
    ]
    g = {}
    for input_label in inputs:
        allowed = [label for label in labels if rng.random() < 0.7]
        g[input_label] = allowed or [rng.choice(labels)]
    return NodeEdgeCheckableLCL(
        sigma_in=inputs,
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=sample(edge_universe),
        g=g,
        name=name or f"random-lcl({seed})",
    )


def solvable_random_lcl(
    seed: int,
    num_labels: int = 3,
    max_degree: int = 2,
    density: float = 0.3,
    num_inputs: int = 1,
    name: Optional[str] = None,
) -> NodeEdgeCheckableLCL:
    """A random LCL with a *planted* deterministic 0-round solution.

    On top of independently sampled random configurations (as in
    :func:`random_lcl`), the generator plants a clique of 1–2 output
    labels that is guaranteed to support a 0-round algorithm: every
    planted label pair (including self-pairs) is in the edge constraint,
    every multiset over the planted labels is in each ``N^d``, and ``g``
    permits a planted label for every input.  By the clique-cover
    characterization (see :mod:`repro.roundelim.zero_round`) the problem
    is therefore 0-round solvable, so the gap pipeline **must** return a
    ``"constant"`` verdict with 0 rounds — a positive-control oracle that
    lets conformance runs assert both directions of the classification
    instead of only "no crash".
    """
    rng = random.Random(seed ^ 0x5EED)
    labels = [f"x{i}" for i in range(num_labels)]
    inputs = (
        [NO_INPUT]
        if num_inputs <= 1
        else [f"i{i}" for i in range(num_inputs)]
    )
    planted = labels[: rng.choice((1, 2)) if num_labels >= 2 else 1]

    def sample(universe: List[Multiset], forced: List[Multiset]) -> List[Multiset]:
        kept = [m for m in universe if rng.random() < density]
        return sorted(set(kept) | set(forced), key=lambda m: m.items)

    node_constraints = {}
    for degree in range(1, max_degree + 1):
        universe = [
            Multiset(combo)
            for combo in itertools.combinations_with_replacement(labels, degree)
        ]
        forced = [
            Multiset(combo)
            for combo in itertools.combinations_with_replacement(planted, degree)
        ]
        node_constraints[degree] = sample(universe, forced)
    edge_universe = [
        Multiset(pair)
        for pair in itertools.combinations_with_replacement(labels, 2)
    ]
    forced_edges = [
        Multiset(pair)
        for pair in itertools.combinations_with_replacement(planted, 2)
    ]
    g = {}
    for input_label in inputs:
        allowed = [label for label in labels if rng.random() < 0.5]
        g[input_label] = sorted(set(allowed) | set(planted))
    return NodeEdgeCheckableLCL(
        sigma_in=inputs,
        sigma_out=labels,
        node_constraints=node_constraints,
        edge_constraint=sample(edge_universe, forced_edges),
        g=g,
        name=name or f"solvable-random-lcl({seed})",
    )


def random_lcl_batch(
    count: int,
    base_seed: int = 0,
    **kwargs,
) -> Sequence[NodeEdgeCheckableLCL]:
    """``count`` independent random problems with derived seeds."""
    return [random_lcl(base_seed * 10_000 + index, **kwargs) for index in range(count)]
