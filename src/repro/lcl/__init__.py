"""LCL problems: general form, node-edge-checkable form, checker, catalog."""

from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.lcl.problem import LCLProblem
from repro.lcl.checker import (
    CheckReport,
    check_solution,
    is_valid_solution,
)
from repro.lcl import catalog
from repro.lcl.random_problems import random_lcl, random_lcl_batch

__all__ = [
    "NodeEdgeCheckableLCL",
    "LCLProblem",
    "CheckReport",
    "check_solution",
    "is_valid_solution",
    "catalog",
    "random_lcl",
    "random_lcl_batch",
]
