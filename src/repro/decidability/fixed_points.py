"""Round-elimination fixed points as lower-bound certificates.

The "standard use case" of round elimination (§1.1) is proving lower
bounds for concrete problems: if ``f(Π) = R̄(R(Π))`` is (equivalent to)
``Π`` itself and ``Π`` is not 0-round solvable, then no ``o(log* n)``
algorithm exists — by Theorem 3.10, an ``o(log* n)`` algorithm would make
some ``f^k(Π)`` 0-round solvable, but every ``f^k(Π)`` *is* ``Π``.  (For
the classic fixed points, e.g. sinkless orientation [14, 15], the same
structure powers the Ω(log log n) randomized / Ω(log n) deterministic
bounds via the failure-probability recurrence of Theorem 3.4.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.roundelim.sequence import ProblemSequence
from repro.roundelim.zero_round import decide_zero_round


@dataclass(frozen=True)
class FixedPointCertificate:
    """A verified fixed point of the round elimination step."""

    problem: NodeEdgeCheckableLCL
    #: Elimination depth at which the fixed point appears.
    depth: int
    #: The fixed-point problem itself (f^depth, isomorphic to f^{depth+1}).
    fixed_problem: NodeEdgeCheckableLCL
    #: True if the fixed point is 0-round solvable (then it certifies
    #: nothing: the problem is constant-time).
    zero_round_solvable: bool

    @property
    def certifies_lower_bound(self) -> bool:
        """Does this certificate rule out o(log* n) algorithms?"""
        return not self.zero_round_solvable

    def summary(self) -> str:
        verdict = (
            "NOT o(log* n)-solvable (fixed point without 0-round algorithm)"
            if self.certifies_lower_bound
            else "0-round solvable fixed point (no lower bound)"
        )
        return (
            f"{self.problem.name}: round-elimination fixed point at depth "
            f"{self.depth}; {verdict}"
        )


def find_fixed_point_certificate(
    problem: NodeEdgeCheckableLCL,
    max_steps: int = 4,
    max_universe: int = 4096,
) -> Optional[FixedPointCertificate]:
    """Search the f-sequence of ``problem`` for a fixed point.

    Uses hygiene + domination pruning (label-level, solvability-
    preserving), under which e.g. sinkless orientation stabilizes after a
    single step.  Returns ``None`` if no fixed point appears within the
    step budget (which is how Θ(log* n) problems behave — their alphabets
    keep growing).
    """
    sequence = ProblemSequence(
        problem, use_domination=True, max_universe=max_universe
    )
    depth = sequence.find_fixed_point(max_steps)
    if depth is None:
        return None
    fixed_problem = sequence.problem(depth)
    # Decision-only: the certificate records *whether* the fixed point is
    # 0-round solvable, so the rule table is never needed and the SAT
    # decision kernel can stop at the first satisfiable clique.
    return FixedPointCertificate(
        problem=problem,
        depth=depth,
        fixed_problem=fixed_problem,
        zero_round_solvable=decide_zero_round(fixed_problem),
    )
