"""The label automaton of an LCL on directed paths and cycles.

§1.4 recalls that on paths and cycles the LOCAL complexity of an LCL
without inputs is decidable, with only three possible classes
``O(1) / Θ(log* n) / Θ(n)`` [41, 17, 21, 22].  The decision procedures
(:mod:`repro.decidability.paths`) run on the *automaton view* built here,
following the automata-theoretic lens of Chang–Studený–Suomela [22]:

Writing a solution on a directed path as the label sequence
``L₁ R₁ | L₂ R₂ | …`` (``Lᵢ``/``Rᵢ`` the half-edge labels of node ``i``
toward its predecessor/successor), correctness decomposes into
``{Lᵢ, Rᵢ} ∈ N²`` per node and ``{Rᵢ, L_{i+1}} ∈ E`` per edge, so the
solutions on long (directed) paths/cycles are exactly the walks of a
finite digraph on the ``R``-labels:

    ``a → b``  iff  ``∃ L: {a, L} ∈ E and {L, b} ∈ N²``.

Cycle solutions of length ``n`` = closed walks of length ``n``; path
solutions additionally need legal start/end states from ``N¹``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exceptions import DecidabilityError
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.multiset import Multiset, label_sort_key


class LabelAutomaton:
    """The walk digraph on ``R``-labels, with witnesses and SCC analysis."""

    def __init__(self, problem: NodeEdgeCheckableLCL):
        if problem.has_inputs:
            raise DecidabilityError(
                "the path/cycle classification implemented here covers LCLs "
                "without inputs (with inputs the problem is PSPACE-hard [3])"
            )
        if problem.max_degree < 2:
            raise DecidabilityError("paths/cycles need degree-2 constraints")
        self.problem = problem
        # A problem "without inputs" still has a g for its unique input
        # label, acting as a global output whitelist (Definition 2.3).
        unique_input = next(iter(problem.sigma_in))
        allowed = problem.allowed_outputs(unique_input)
        self.states: List[Any] = sorted(
            (a for a in problem.sigma_out if a in allowed), key=label_sort_key
        )
        #: arcs[a] = {b: witness L} for arcs a -> b.
        self.arcs: Dict[Any, Dict[Any, Any]] = {a: {} for a in self.states}
        for a in self.states:
            for left in self.states:
                if not problem.allows_edge(a, left):
                    continue
                for b in self.states:
                    if b in self.arcs[a]:
                        continue
                    if problem.allows_node([left, b]):
                        self.arcs[a][b] = left

    # ------------------------------------------------------------ basic ops
    def successors(self, state: Any) -> List[Any]:
        return sorted(self.arcs[state], key=label_sort_key)

    def has_arc(self, a: Any, b: Any) -> bool:
        return b in self.arcs[a]

    def self_loop_states(self) -> List[Any]:
        """States with ``a → a``: period-1 patterns (the O(1) witnesses)."""
        return [a for a in self.states if a in self.arcs[a]]

    # ------------------------------------------------- path-end conditions
    def legal_start_states(self) -> List[Any]:
        """States usable as ``R₁`` of a degree-1 path start."""
        n1 = self.problem.node_constraints.get(1, frozenset())
        return [a for a in self.states if Multiset([a]) in n1]

    def legal_end_states(self) -> List[Any]:
        """States ``R_{n-1}`` whose successor node can be a path end."""
        n1 = self.problem.node_constraints.get(1, frozenset())
        ends = []
        for a in self.states:
            for left in self.states:
                if self.problem.allows_edge(a, left) and Multiset([left]) in n1:
                    ends.append(a)
                    break
        return ends

    # --------------------------------------------------------------- graphy
    def reachable_from(self, sources) -> Set[Any]:
        seen = set(sources)
        stack = list(sources)
        while stack:
            state = stack.pop()
            for nxt in self.arcs[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def co_reachable_to(self, targets) -> Set[Any]:
        reverse: Dict[Any, Set[Any]] = {a: set() for a in self.states}
        for a, outs in self.arcs.items():
            for b in outs:
                reverse[b].add(a)
        seen = set(targets)
        stack = list(targets)
        while stack:
            state = stack.pop()
            for prv in reverse[state]:
                if prv not in seen:
                    seen.add(prv)
                    stack.append(prv)
        return seen

    def strongly_connected_components(self) -> List[Set[Any]]:
        """Tarjan's algorithm (iterative), deterministic order."""
        index: Dict[Any, int] = {}
        lowlink: Dict[Any, int] = {}
        on_stack: Set[Any] = set()
        stack: List[Any] = []
        components: List[Set[Any]] = []
        counter = [0]

        def strongconnect(root: Any) -> None:
            work = [(root, iter(self.successors(root)))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for nxt in successors:
                    if nxt not in index:
                        index[nxt] = lowlink[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(self.successors(nxt))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        lowlink[node] = min(lowlink[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)

        for state in self.states:
            if state not in index:
                strongconnect(state)
        return components

    def component_cycle_gcd(self, component: Set[Any]) -> Optional[int]:
        """gcd of all cycle lengths inside the component (None if acyclic).

        Standard trick: pick a root, assign BFS potentials; the gcd of
        ``potential(u) + 1 - potential(v)`` over internal arcs ``u → v``
        equals the cycle-length gcd.
        """
        internal_arcs = [
            (u, v) for u in component for v in self.arcs[u] if v in component
        ]
        if not internal_arcs:
            return None
        root = min(component, key=label_sort_key)
        potential: Dict[Any, int] = {root: 0}
        frontier = [root]
        while frontier:
            u = frontier.pop()
            for v in self.arcs[u]:
                if v in component and v not in potential:
                    potential[v] = potential[u] + 1
                    frontier.append(v)
        gcd = 0
        for u, v in internal_arcs:
            gcd = math.gcd(gcd, potential[u] + 1 - potential[v])
        return abs(gcd) if gcd else None

    def flexible_states(self) -> List[Any]:
        """States inside an SCC whose cycle lengths have gcd 1.

        A flexible state admits closed walks of *every* sufficiently large
        length — the automaton-side witness for Θ(log* n)-solvability on
        cycles (fill the gaps between ruling-set anchors with walks of the
        required lengths).
        """
        flexible: List[Any] = []
        for component in self.strongly_connected_components():
            gcd = self.component_cycle_gcd(component)
            if gcd == 1:
                flexible.extend(component)
        return sorted(flexible, key=label_sort_key)

    # ------------------------------------------------------- length algebra
    def _step_matrix(self) -> Dict[Any, Set[Any]]:
        return {a: set(self.arcs[a]) for a in self.states}

    def solvable_cycle_lengths(self, upto: int) -> List[int]:
        """All ``3 <= n <= upto`` such that an ``n``-cycle is solvable.

        An ``n``-cycle solution is exactly a closed walk of length ``n``
        in the automaton, found here by dynamic programming over
        walk-reachability — the ground truth that the classification's
        gcd reasoning is validated against (and, in tests, cross-checked
        with the exponential brute-force solver on concrete cycles).
        """
        lengths: List[int] = []
        arcs = self._step_matrix()
        # reach[a][b] = walk of current length from a to b exists.
        reach: Dict[Any, Set[Any]] = {a: set(arcs[a]) for a in self.states}
        for length in range(2, upto + 1):
            reach = {
                a: {c for b in reach[a] for c in arcs[b]} for a in self.states
            }
            if length >= 3 and any(a in reach[a] for a in self.states):
                lengths.append(length)
        return lengths

    def solvable_path_lengths(self, upto: int) -> List[int]:
        """All ``2 <= n <= upto`` such that an ``n``-node path is solvable.

        A path solution is a walk of ``n - 2`` arcs from a legal start
        state to a legal end state (``n = 2``: a single state that is both).
        """
        starts = set(self.legal_start_states())
        ends = set(self.legal_end_states())
        lengths: List[int] = []
        if starts & ends:
            lengths.append(2)
        arcs = self._step_matrix()
        current = set(starts)
        for n in range(3, upto + 1):
            current = {b for a in current for b in arcs[a]}
            if current & ends:
                lengths.append(n)
            if not current:
                break
        return lengths

    def has_cycle(self) -> bool:
        return any(
            self.component_cycle_gcd(component) is not None
            for component in self.strongly_connected_components()
        )

    def __repr__(self) -> str:
        arc_count = sum(len(outs) for outs in self.arcs.values())
        return f"LabelAutomaton(states={len(self.states)}, arcs={arc_count})"
