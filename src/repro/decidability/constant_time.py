"""Question 1.7: semideciding constant-time solvability on trees.

The paper observes that Theorem 3.11 reduces Question 1.7 ("is it
decidable whether an LCL can be solved in constant time on trees?") to
the semidecidability of Ω(log* n) lower bounds, because the *positive*
direction is semidecidable: ``Π`` is constant-time solvable **iff** some
``f^k(Π)`` admits a deterministic 0-round algorithm (forward direction by
the Theorem 3.10 walk; backward by ``k`` applications of Lemma 3.9).

:func:`semidecide_constant_time` runs that loop with a step budget and
reports one of three verdicts; ``CONSTANT`` verdicts come with the
synthesized algorithm, ``NOT_CONSTANT`` verdicts with a fixed-point
certificate — only ``INCONCLUSIVE`` reflects the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.local.model import LocalAlgorithm
from repro.roundelim.gap import GapResult, speedup
from repro.utils import cache as operator_cache
from repro.utils.budget import Budget, BudgetDiagnostics

CONSTANT = "CONSTANT"
NOT_CONSTANT = "NOT_CONSTANT"
INCONCLUSIVE = "INCONCLUSIVE"


@dataclass(frozen=True)
class ConstantTimeVerdict:
    problem: NodeEdgeCheckableLCL
    verdict: str
    #: Rounds of the synthesized algorithm (CONSTANT only).
    rounds: Optional[int]
    #: The synthesized deterministic LOCAL algorithm (CONSTANT only).
    algorithm: Optional[LocalAlgorithm]
    #: The underlying gap-pipeline result.
    gap_result: GapResult
    #: Per-operator counter deltas (hits/misses/computes/…) accumulated by
    #: this run alone — how much work the walk did vs. found cached.
    cache_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def unknown_since_step(self) -> Optional[int]:
        """For INCONCLUSIVE: no ``f^j(Π)`` with ``j`` below this is 0-round
        solvable — the anytime partial answer ``UNKNOWN(>= step k)``."""
        return self.gap_result.unknown_since_step

    @property
    def budget_diagnostics(self) -> Optional[BudgetDiagnostics]:
        """Machine-readable budget-trip record, when a budget ended the run."""
        return self.gap_result.budget_diagnostics

    def summary(self) -> str:
        if self.verdict == CONSTANT:
            return (
                f"{self.problem.name}: constant-time solvable "
                f"({self.rounds} rounds, algorithm synthesized)"
            )
        if self.verdict == NOT_CONSTANT:
            return (
                f"{self.problem.name}: not o(log* n)-solvable "
                f"(round-elimination fixed point at depth "
                f"{self.gap_result.fixed_point_at})"
            )
        step = self.unknown_since_step
        label = "UNKNOWN" if step is None else f"UNKNOWN(>= step {step})"
        reason = self.gap_result.note or "step budget exhausted"
        return f"{self.problem.name}: {label} — {reason}"


def _stats_delta(
    before: Dict[str, Dict[str, float]], after: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    delta: Dict[str, Dict[str, float]] = {}
    for operator, counters in after.items():
        baseline = before.get(operator, {})
        changed = {
            f: v - baseline.get(f, 0) for f, v in counters.items() if v != baseline.get(f, 0)
        }
        if changed:
            delta[operator] = changed
    return delta


def semidecide_constant_time(
    problem: NodeEdgeCheckableLCL,
    max_steps: int = 4,
    max_universe: int = 4096,
    use_cache: bool = True,
    budget: Optional[Budget] = None,
    checkpoint=None,
    resume: bool = False,
) -> ConstantTimeVerdict:
    """Run the Question 1.7 semidecision loop on a node-edge-checkable LCL.

    The round-elimination walk runs through the canonical operator cache
    (unless ``use_cache=False``); the verdict's ``cache_stats`` records
    the per-operator hit/miss/compute deltas of this run, so a warm
    re-verdict shows zero ``computes``.

    With a ``budget`` (or an ambient ``with Budget(...):``), the
    semidecision becomes an *anytime* algorithm: exhaustion yields an
    ``INCONCLUSIVE`` verdict whose :attr:`~ConstantTimeVerdict.unknown_since_step`
    and :attr:`~ConstantTimeVerdict.budget_diagnostics` report exactly how
    far the walk got — never a hang, never a bare exception.
    ``checkpoint`` / ``resume`` persist and restore the underlying
    sequence walk (see :mod:`repro.roundelim.checkpoint`).
    """
    before = operator_cache.stats()["operators"]
    result = speedup(
        problem,
        max_steps=max_steps,
        max_universe=max_universe,
        use_cache=use_cache,
        budget=budget,
        checkpoint=checkpoint,
        resume=resume,
    )
    cache_stats = _stats_delta(before, operator_cache.stats()["operators"])
    if result.status == "constant":
        return ConstantTimeVerdict(
            problem=problem,
            verdict=CONSTANT,
            rounds=result.constant_rounds,
            algorithm=result.algorithm,
            gap_result=result,
            cache_stats=cache_stats,
        )
    if result.status == "fixed-point":
        return ConstantTimeVerdict(
            problem=problem,
            verdict=NOT_CONSTANT,
            rounds=None,
            algorithm=None,
            gap_result=result,
            cache_stats=cache_stats,
        )
    return ConstantTimeVerdict(
        problem=problem,
        verdict=INCONCLUSIVE,
        rounds=None,
        algorithm=None,
        gap_result=result,
        cache_stats=cache_stats,
    )
