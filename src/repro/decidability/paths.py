"""Classification of LCLs without inputs on directed paths and cycles.

§1.4: "in paths and cycles the only LOCAL complexities are O(1),
Θ(log* n), and Θ(n), and it can be decided in polynomial time into which
class a given LCL problem falls, provided that the LCL does not have
inputs" [41, 17, 21, 22].  This module implements that decision on the
:class:`~repro.decidability.automata.LabelAutomaton` view:

* **UNSOLVABLE** — beyond some length no solution exists at all (the
  automaton admits no long-enough walks);
* **GLOBAL (Θ(n))** — solvable for infinitely many lengths, but the
  automaton has no *flexible* state on the relevant walks: solutions
  exist only for lengths in restricted residue classes, or cannot be
  stitched together locally, so nodes must see a constant fraction of the
  instance;
* **LOG_STAR (Θ(log* n))** — a flexible state exists (closed walks of all
  large lengths through one state): anchor nodes via an O(log* n) ruling
  set and fill the stretches between anchors with walks of the required
  lengths; the matching lower bound is Linial's [36] unless the next
  condition holds;
* **CONSTANT (O(1))** — a *period-1* pattern exists (a self-loop
  ``s → s``, i.e. labels ``(L, s)`` with ``{s, L} ∈ E`` and
  ``{L, s} ∈ N²``), reachable within a constant affix from legal path
  ends where applicable: every node outputs the repeating pattern (and
  nodes within a constant distance of a path end output the affix), with
  no symmetry breaking needed thanks to the consistent orientation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Set

from repro.decidability.automata import LabelAutomaton
from repro.lcl.nec import NodeEdgeCheckableLCL

CONSTANT = "O(1)"
LOG_STAR = "Theta(log* n)"
GLOBAL = "Theta(n)"
UNSOLVABLE = "unsolvable"


@dataclass(frozen=True)
class Classification:
    """A decided complexity class plus its certificate."""

    complexity: str
    #: A self-loop state (CONSTANT), flexible state (LOG_STAR), or None.
    witness: Optional[Any]
    explanation: str

    def __str__(self) -> str:
        return f"{self.complexity} ({self.explanation})"


def classify_cycle_problem(problem: NodeEdgeCheckableLCL) -> Classification:
    """Decide the complexity of an input-free LCL on long directed cycles."""
    automaton = LabelAutomaton(problem)
    if not automaton.has_cycle():
        return Classification(
            UNSOLVABLE, None, "the label automaton is acyclic: no long solutions"
        )
    loops = automaton.self_loop_states()
    if loops:
        witness = loops[0]
        return Classification(
            CONSTANT,
            witness,
            f"period-1 pattern through state {witness!r} "
            f"(witness left-label {automaton.arcs[witness][witness]!r})",
        )
    flexible = automaton.flexible_states()
    if flexible:
        return Classification(
            LOG_STAR,
            flexible[0],
            f"flexible state {flexible[0]!r} admits closed walks of every "
            "large length; no period-1 pattern exists",
        )
    return Classification(
        GLOBAL,
        None,
        "solutions exist only for restricted cycle lengths "
        "(every strongly connected component has cycle-gcd > 1)",
    )


def classify_path_problem(problem: NodeEdgeCheckableLCL) -> Classification:
    """Decide the complexity of an input-free LCL on long directed paths.

    Same trichotomy as cycles, but walks must start and end at legal
    degree-1 states, and the CONSTANT/LOG_STAR witnesses must be reachable
    from a legal start *and* co-reachable to a legal end (the constant
    affixes near the two path ends).
    """
    automaton = LabelAutomaton(problem)
    starts = automaton.legal_start_states()
    ends = automaton.legal_end_states()
    if not starts or not ends:
        return Classification(
            UNSOLVABLE, None, "no legal path endpoint states (N^1 unusable)"
        )
    reachable = automaton.reachable_from(starts)
    co_reachable = automaton.co_reachable_to(ends)
    live = reachable & co_reachable
    if not live:
        return Classification(
            UNSOLVABLE, None, "no walk connects a legal start to a legal end"
        )
    if not _has_cycle_within(automaton, live):
        return Classification(
            UNSOLVABLE,
            None,
            "only finitely many path lengths are solvable (no live cycle)",
        )
    loops = [state for state in automaton.self_loop_states() if state in live]
    if loops:
        witness = loops[0]
        return Classification(
            CONSTANT,
            witness,
            f"period-1 pattern through live state {witness!r} with constant "
            "affixes to both path ends",
        )
    flexible = [state for state in automaton.flexible_states() if state in live]
    if flexible:
        return Classification(
            LOG_STAR,
            flexible[0],
            f"live flexible state {flexible[0]!r}; no period-1 pattern",
        )
    return Classification(
        GLOBAL,
        None,
        "live solutions exist but only for restricted lengths",
    )


def _has_cycle_within(automaton: LabelAutomaton, allowed: Set[Any]) -> bool:
    """Is there a directed cycle using only ``allowed`` states?"""
    colors = {state: 0 for state in allowed}  # 0 new, 1 active, 2 done

    def dfs(root: Any) -> bool:
        stack = [(root, iter(automaton.successors(root)))]
        colors[root] = 1
        while stack:
            node, successors = stack[-1]
            found = False
            for nxt in successors:
                if nxt not in allowed:
                    continue
                if colors[nxt] == 1:
                    return True
                if colors[nxt] == 0:
                    colors[nxt] = 1
                    stack.append((nxt, iter(automaton.successors(nxt))))
                    found = True
                    break
            if not found:
                colors[node] = 2
                stack.pop()
        return False

    for state in allowed:
        if colors[state] == 0 and dfs(state):
            return True
    return False
