"""Decision procedures for LCL complexities (§1.4)."""

from repro.decidability.automata import LabelAutomaton
from repro.decidability.paths import (
    Classification,
    classify_cycle_problem,
    classify_path_problem,
)
from repro.decidability.fixed_points import (
    FixedPointCertificate,
    find_fixed_point_certificate,
)
from repro.decidability.constant_time import (
    ConstantTimeVerdict,
    semidecide_constant_time,
)

__all__ = [
    "LabelAutomaton",
    "Classification",
    "classify_cycle_problem",
    "classify_path_problem",
    "FixedPointCertificate",
    "find_fixed_point_certificate",
    "ConstantTimeVerdict",
    "semidecide_constant_time",
]
